// Slot content analysis — the paper's stated future work (§V-D2: "Work
// could be done to automatically extract and process the information
// within each slot, but this is beyond the scope of this paper").
//
// Table XI shows that slots carry consistent user-specific information
// (the second slot "if not empty, always discusses time") in messy
// formats ("until 9pm" vs "9 P.M"). This module classifies each slot of
// a template by the kind of content its fills carry, so an analyst (or a
// downstream extractor) immediately knows which slot holds the phone
// number, the price, or the schedule.

#ifndef INFOSHIELD_CORE_SLOT_ANALYSIS_H_
#define INFOSHIELD_CORE_SLOT_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/fine_clustering.h"
#include "core/template.h"
#include "mdl/cost_model.h"
#include "msa/pairwise.h"
#include "text/corpus.h"
#include "util/status.h"

namespace infoshield {

// --- Incremental slot-cost algebra (Algorithm 3's inner loop) ---
//
// Slot detection asks, for every candidate gap g, "does enabling a slot
// at g lower the cluster's total cost?". Re-encoding every member per
// probe costs O(gaps x docs x alignment length). But a document's
// encoding summary is a pure function of per-gap edit counts that never
// change while the slot mask evolves: the alignment (and therefore which
// gap each inserted/substituted word is attributed to) is fixed before
// slot detection starts. GapCostProfile captures those invariant counts
// once per alignment — one O(length) walk — after which the summary for
// ANY slot mask is reconstructed in O(active gaps) integer arithmetic,
// making each probe O(docs) instead of O(docs x length).
//
// Exactness: the reconstruction below produces the same EncodingSummary
// integers as EncodeDocumentWithAlignment, so feeding them to
// CostModel::AlignmentCostBase yields bit-identical doubles (same
// function, same inputs, same slot order). DESIGN.md §10 derives the
// algebra; determinism_test cross-checks it against the naive path.
struct GapCostProfile {
  // Insert/substitute edits attributed to one gap.
  struct GapEdits {
    size_t gap = 0;
    size_t insertions = 0;
    size_t substitutions = 0;
  };

  // Matched + deleted alignment columns. These survive every slot mask
  // unchanged (a match stays a constant column; a delete stays an
  // unmatched deletion).
  size_t constant_columns = 0;
  // Deleted columns alone (the slot-mask-independent unmatched floor).
  size_t deletions = 0;
  // Gaps that accumulated at least one inserted or substituted word,
  // ascending by gap.
  std::vector<GapEdits> edits;

  // Edits at `gap`, or nullptr when the gap is edit-free. O(lg edits).
  const GapEdits* FindGap(size_t gap) const;
};

// One O(length) walk over the alignment, using Algorithm 3's gap
// attribution (the gap counter advances on matched and deleted columns).
GapCostProfile BuildGapCostProfile(const Alignment& alignment);

// Encoding summary of this alignment under the slot mask `slot_gaps`
// (ascending enabled gaps) — identical integers to what
// EncodeDocumentWithAlignment would count for the same template.
EncodingSummary SummaryForSlotMask(const GapCostProfile& profile,
                                   const std::vector<size_t>& slot_gaps);

enum class SlotContentKind : uint8_t {
  kEmpty = 0,      // no document fills this slot
  kPhone = 1,      // phone-number-like digit runs
  kPrice = 2,      // small numbers / price wording
  kTime = 3,       // schedule wording (am/pm/hours/days...)
  kUrl = 4,        // links
  kNumeric = 5,    // other mostly-numeric content
  kName = 6,       // short, capitalized-style single tokens, high variety
  kFreeText = 7,   // anything else
};

const char* SlotContentKindToString(SlotContentKind kind);

struct SlotProfile {
  // Gap position of the slot in the template.
  size_t gap = 0;
  SlotContentKind kind = SlotContentKind::kEmpty;
  // Fraction of member documents that leave the slot empty.
  double empty_fraction = 0.0;
  // Distinct fills / non-empty fills — 1.0 means every document differs.
  double distinct_fraction = 0.0;
  // Mean number of words per non-empty fill.
  double mean_words = 0.0;
  // Up to `max_examples` distinct example fills (joined words).
  std::vector<std::string> examples;
};

struct SlotAnalysisOptions {
  size_t max_examples = 5;
};

// Profiles every slot of a template cluster.
std::vector<SlotProfile> AnalyzeSlots(const TemplateCluster& cluster,
                                      const Corpus& corpus,
                                      const SlotAnalysisOptions& options = {});

// One-line-per-slot human-readable summary.
std::string RenderSlotProfiles(const std::vector<SlotProfile>& profiles);

// Deep invariant audit (util/audit.h): profiles cover exactly the
// template's enabled slot gaps in ascending order, fractions lie in
// [0, 1], mean word counts are finite and non-negative, and a kEmpty
// classification is consistent with an empty-fill slot. Returns OK or an
// Internal status listing every violation.
Status ValidateSlotProfiles(const std::vector<SlotProfile>& profiles,
                            const Template& tmpl);

namespace internal {
// Exposed for tests: classifies a bag of fill strings.
SlotContentKind ClassifyFills(const std::vector<std::string>& fills);
}  // namespace internal

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_SLOT_ANALYSIS_H_
