// InfoShield-Fine (paper §IV-B, Algorithms 2–4).
//
// Operates inside one coarse cluster. Repeats until no documents remain:
//   1. Candidate Alignment — the first remaining document d1 seeds the
//      candidate set; every remaining d with C(d|d1) < C(d) joins and is
//      fused into a POA graph.
//   2. Consensus Search — dichotomous search (Algorithm 2) over the
//      support threshold h for the sub-alignment Sel(A, h) minimizing the
//      candidates' data cost. (The search also keeps the argmin of all
//      probed thresholds, so a non-unimodal cost curve can never make it
//      return something worse than the best probe.)
//   3. Slot Detection — gap positions accumulating inserted/substituted
//      words across candidates become slots when that lowers total cost
//      (Algorithm 3).
//   4. MDL acceptance — the template joins the model iff the cluster's
//      total cost C(M) + C(D|M) decreases (Algorithm 4); otherwise its
//      candidate set is noise.
//
// Parameter-free: every choice above is made by cost comparison.

#ifndef INFOSHIELD_CORE_FINE_CLUSTERING_H_
#define INFOSHIELD_CORE_FINE_CLUSTERING_H_

#include <vector>

#include "core/template.h"
#include "mdl/cost_model.h"
#include "msa/aligner.h"
#include "msa/pairwise.h"
#include "msa/poa.h"
#include "msa/profile_msa.h"
#include "text/corpus.h"
#include "text/ngram.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

// Which MSA implementation builds the candidate alignment (§IV-B: the
// fine stage co-works with any MSA; POA is the paper's choice).
enum class MsaBackend {
  kPoa = 0,      // partial order alignment (paper default)
  kProfile = 1,  // Barton-Sternberg-style profile alignment (ablation)
};

struct FineOptions {
  AlignmentScoring scoring;
  // Templates must describe at least this many documents (paper: "each
  // template is expected to encode at least two documents").
  size_t min_template_support = 2;
  // Ablation switch: evaluate every threshold instead of the dichotomous
  // search of Algorithm 2.
  bool exhaustive_consensus_search = false;
  MsaBackend msa_backend = MsaBackend::kPoa;
  // Escape hatch: re-align every member per consensus probe and re-encode
  // every member per candidate slot, exactly as the pre-optimization code
  // did. Output is byte-identical to the default (cached + incremental)
  // path — determinism_test enforces it — so this exists only to
  // cross-check and to measure the win (bench_fine reports both).
  bool use_naive_costing = false;
  // Worker threads for the intra-cluster candidate-alignment scan (the
  // seed-vs-pool encoding probes are independent). 1 = sequential,
  // 0 = hardware concurrency. Results are byte-identical for any value;
  // leave at 1 when clusters are already fanned out across a pool
  // (InfoShieldOptions::num_threads) to avoid oversubscription.
  size_t scan_threads = 1;
};

// Hot-path counters for one fine-stage run (summed over seeds for
// RunOnCluster, over clusters by the pipeline). Deliberately not part of
// the canonical JSON output: the optimized and naive paths must emit
// byte-identical results while reporting very different counter values.
struct FineStageStats {
  // Full Needleman-Wunsch alignments computed (pool scans + consensus
  // evaluations + any naive-path re-alignment).
  size_t alignments_computed = 0;
  // Consensus-search cost evaluations requested (distinct thresholds).
  size_t consensus_probes = 0;
  // Probes whose consensus was already evaluated under another
  // threshold — each hit saves one alignment+slot-detection pass over
  // every candidate document.
  size_t consensus_cache_hits = 0;
  // Candidate slot positions evaluated by DetectSlots.
  size_t slot_candidates_evaluated = 0;

  void MergeFrom(const FineStageStats& other);
  double cache_hit_rate() const;
};

// One discovered template and the documents it encodes.
struct TemplateCluster {
  Template tmpl;
  std::vector<DocId> members;
  // Parallel to members.
  std::vector<DocEncoding> encodings;
};

struct FineResult {
  std::vector<TemplateCluster> templates;
  // Documents no accepted template describes.
  std::vector<DocId> noise;
  // Total cost of the cluster with zero templates / with the final model.
  double cost_before = 0.0;
  double cost_after = 0.0;
  // Hot-path counters (never serialized into the canonical JSON).
  FineStageStats stats;

  // Eq. 7. 1.0 when nothing compressed.
  double relative_length() const {
    return RelativeLength(cost_after, cost_before);
  }
};

class FineClustering {
 public:
  FineClustering() = default;
  explicit FineClustering(FineOptions options) : options_(options) {}

  // Runs Algorithm 4 on the given documents (typically one coarse
  // cluster). The cost model must be built from the corpus vocabulary so
  // lg V is consistent across clusters.
  //
  // doc_top_phrases (optional, indexed by global DocId — the coarse
  // stage's CoarseResult::doc_top_phrases) restricts each seed's
  // candidate scan to documents sharing a top phrase with the seed.
  // Near-duplicates always share top phrases directly, so this changes
  // nothing for real micro-clusters while keeping the total work
  // proportional to the number of bipartite edges — the ingredient that
  // makes Lemma 2's quasi-linearity hold even when a coarse component
  // over-merges. Without it, each seed scans every remaining document.
  FineResult RunOnCluster(
      const Corpus& corpus, const std::vector<DocId>& doc_ids,
      const CostModel& cost_model,
      const std::vector<std::vector<PhraseHash>>* doc_top_phrases =
          nullptr) const;

  const FineOptions& options() const { return options_; }

  // --- Exposed sub-steps (tested independently) ---

  // Everything the winning consensus-search probe already computed, so
  // the caller never re-aligns or re-detects slots for the winner.
  struct ConsensusChoice {
    // Winning consensus tokens (empty when no non-empty consensus).
    std::vector<TokenId> consensus;
    // The consensus as a template with slots already detected.
    Template tmpl;
    // Per candidate document (input order), its alignment against
    // `consensus` — valid for EncodeDocumentWithAlignment(tmpl, ...).
    std::vector<Alignment> alignments;
    // Template model cost plus the documents' base encoding cost under
    // `tmpl` (the search objective; lg t omitted — constant during the
    // search).
    double cost = 0.0;
  };

  // Algorithm 2, returning the full evaluation of the winner. Probes are
  // cached by consensus identity: distinct thresholds frequently select
  // the same sub-alignment, and each cache hit skips one
  // alignment+slot-detection pass over all candidate documents.
  ConsensusChoice SearchConsensus(
      const MsaAligner& alignment,
      const std::vector<std::vector<TokenId>>& candidate_docs,
      const CostModel& cost_model, FineStageStats* stats = nullptr) const;

  // Algorithm 2: returns the consensus token sequence minimizing
  // C(Di | Sel(A, h)) over thresholds h in [0, |Di|-1].
  std::vector<TokenId> ConsensusSearch(
      const MsaAligner& alignment,
      const std::vector<std::vector<TokenId>>& candidate_docs,
      const CostModel& cost_model) const;

  // Algorithm 3: adds slots to `tmpl` (in place) wherever they lower the
  // combined model+data cost; `alignments` are the candidates' alignments
  // against tmpl.tokens and are not invalidated by slot changes.
  void DetectSlots(Template& tmpl, const std::vector<Alignment>& alignments,
                   const CostModel& cost_model) const;

 private:
  // Cost of a candidate consensus as it would actually be adopted:
  // template model cost plus the documents' encoding cost after slot
  // detection (the lg t term is omitted — constant during the search).
  // The naive probe path; the default path goes through
  // EvaluateCandidate so alignments are computed once per distinct
  // consensus and slot probes are incremental.
  double CandidateDataCost(const std::vector<TokenId>& consensus,
                           const std::vector<std::vector<TokenId>>& docs,
                           const CostModel& cost_model,
                           FineStageStats* stats) const;

  // Aligns every candidate document against `consensus`, detects slots
  // incrementally, and returns the populated ConsensusChoice.
  ConsensusChoice EvaluateCandidate(
      const std::vector<TokenId>& consensus,
      const std::vector<std::vector<TokenId>>& docs,
      const CostModel& cost_model, FineStageStats* stats) const;

  // Algorithm 3 via full re-encoding per probe (escape hatch) and via
  // the GapCostProfile delta algebra (default). Both mutate `tmpl`
  // identically. The incremental variant can also report each
  // document's final base encoding cost (bit-identical to
  // EncodeDocumentWithAlignment(tmpl, ...).base_cost) for free.
  void DetectSlotsNaive(Template& tmpl,
                        const std::vector<Alignment>& alignments,
                        const CostModel& cost_model,
                        FineStageStats* stats) const;
  void DetectSlotsIncremental(Template& tmpl,
                              const std::vector<Alignment>& alignments,
                              const CostModel& cost_model,
                              FineStageStats* stats,
                              std::vector<double>* final_base_costs) const;

  FineOptions options_;
};

// Deep invariant audits (util/audit.h).
//
// ValidateTemplateCluster: the template itself is well-formed, members
// are distinct valid documents, encodings run parallel to members, and
// every encoding's edit trace replays to its member's token sequence.
Status ValidateTemplateCluster(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const CostModel* cost_model = nullptr);

// ValidateFineResult: every template cluster validates, template members
// and noise exactly partition `cluster_docs`, and the costs are finite
// with cost_after <= cost_before (the model is only ever accepted when it
// compresses).
Status ValidateFineResult(const FineResult& result, const Corpus& corpus,
                          const std::vector<DocId>& cluster_docs,
                          const CostModel* cost_model = nullptr);

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_FINE_CLUSTERING_H_
