// Ranked output and within-cluster anomaly spotting.
//
// Table I credits InfoShield with "Practical — Ranked output": analysts
// triage the most suspicious micro-clusters first. The natural MDL
// ranking is by compression quality — clusters closest to their Lemma 1
// lower bound (near-duplicates at volume) first.
//
// §V-D1 also observes that individual documents that deviate from an
// otherwise-uniform cluster stand out through their compression rate
// ("the last tweet will have a lower compression rate than all other
// tweets"); MemberCompressionRatios/FlagAnomalousMembers implement that
// per-member view.

#ifndef INFOSHIELD_CORE_RANKING_H_
#define INFOSHIELD_CORE_RANKING_H_

#include <cstddef>
#include <vector>

#include "core/fine_clustering.h"
#include "core/infoshield.h"
#include "mdl/cost_model.h"
#include "text/corpus.h"

namespace infoshield {

struct RankedTemplate {
  // Index into InfoShieldResult::templates.
  size_t template_index = 0;
  size_t num_docs = 0;
  // Per-template relative length: (template cost + members' encoding
  // cost) / members' unencoded cost. Lower = stronger duplication.
  double relative_length = 1.0;
  // Lemma 1 bound for (t=1, n=num_docs).
  double lower_bound = 0.0;
  // relative_length - lower_bound; the ranking key (ascending).
  double slack = 0.0;
};

// Ranks all templates of a result, most suspicious (smallest slack,
// ties: larger cluster) first.
std::vector<RankedTemplate> RankTemplates(const InfoShieldResult& result,
                                          const Corpus& corpus,
                                          const CostModel& cost_model);

// Per-member compression ratio: encoded cost / unencoded cost, parallel
// to cluster.members. Near-duplicates compress hard (small ratio); a
// member that barely fits the template approaches 1.
std::vector<double> MemberCompressionRatios(const TemplateCluster& cluster,
                                            const Corpus& corpus,
                                            const CostModel& cost_model);

// Members whose compression ratio exceeds the cluster median by
// `tolerance` (absolute). Returns indices into cluster.members.
std::vector<size_t> FlagAnomalousMembers(const TemplateCluster& cluster,
                                         const Corpus& corpus,
                                         const CostModel& cost_model,
                                         double tolerance = 0.2);

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_RANKING_H_
