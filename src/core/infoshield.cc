#include "core/infoshield.h"

#include "util/thread_pool.h"
#include "util/timer.h"

namespace infoshield {

size_t InfoShieldResult::num_suspicious() const {
  size_t n = 0;
  for (int64_t t : doc_template) {
    if (t >= 0) ++n;
  }
  return n;
}

InfoShieldResult InfoShield::Run(const Corpus& corpus) const {
  InfoShieldResult result;
  result.doc_template.assign(corpus.size(), -1);

  WallTimer timer;
  CoarseClustering coarse(options_.coarse);
  CoarseResult coarse_result = coarse.Run(corpus);
  result.coarse_seconds = timer.ElapsedSeconds();
  result.num_coarse_clusters = coarse_result.clusters.size();
  result.num_singletons = coarse_result.singletons.size();

  timer.Restart();
  const CostModel cost_model = CostModel::ForVocabulary(corpus.vocab());
  FineClustering fine(options_.fine);
  // Clusters are independent; fan them out, then merge in cluster order
  // so the result is identical for any thread count.
  std::vector<FineResult> fine_results(coarse_result.clusters.size());
  ThreadPool::ParallelFor(
      options_.num_threads, coarse_result.clusters.size(), [&](size_t ci) {
        fine_results[ci] =
            fine.RunOnCluster(corpus, coarse_result.clusters[ci],
                              cost_model, &coarse_result.doc_top_phrases);
      });
  for (size_t ci = 0; ci < coarse_result.clusters.size(); ++ci) {
    FineResult& fr = fine_results[ci];

    ClusterStats stats;
    stats.coarse_cluster_index = ci;
    stats.num_docs = coarse_result.clusters[ci].size();
    stats.num_templates = fr.templates.size();
    stats.cost_before = fr.cost_before;
    stats.cost_after = fr.cost_after;
    stats.relative_length = fr.relative_length();
    stats.lower_bound = RelativeLengthLowerBound(
        std::max<size_t>(fr.templates.size(), 1), stats.num_docs,
        cost_model.lg_vocab());
    result.cluster_stats.push_back(stats);

    for (TemplateCluster& tc : fr.templates) {
      const int64_t template_index =
          static_cast<int64_t>(result.templates.size());
      for (DocId d : tc.members) {
        result.doc_template[d] = template_index;
      }
      result.templates.push_back(std::move(tc));
      result.template_coarse_cluster.push_back(ci);
    }
  }
  result.fine_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace infoshield
