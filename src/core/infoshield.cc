#include "core/infoshield.h"

#include <cmath>

#include "util/audit.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace infoshield {

size_t InfoShieldResult::num_suspicious() const {
  size_t n = 0;
  for (int64_t t : doc_template) {
    if (t >= 0) ++n;
  }
  return n;
}

InfoShieldResult InfoShield::Run(const Corpus& corpus) const {
  InfoShieldResult result;
  result.doc_template.assign(corpus.size(), -1);

  WallTimer timer;
  CoarseOptions coarse_options = options_.coarse;
  coarse_options.num_threads = options_.num_threads;
  CoarseClustering coarse(coarse_options);
  CoarseResult coarse_result = coarse.Run(corpus);
  result.coarse_seconds = timer.ElapsedSeconds();
  result.coarse_stats = coarse_result.stats;
  result.num_coarse_clusters = coarse_result.clusters.size();
  result.num_singletons = coarse_result.singletons.size();

  timer.Restart();
  const CostModel cost_model = CostModel::ForVocabulary(corpus.vocab());
  FineClustering fine(options_.fine);
  // Clusters are independent; fan them out, then merge in cluster order
  // so the result is identical for any thread count. Workers write only
  // their own fine_results[ci] slot; everything they share goes through
  // `progress`, whose fields carry the GUARDED_BY contract.
  struct FineProgress {
    Mutex mu;
    size_t clusters_done GUARDED_BY(mu) = 0;
    size_t templates_found GUARDED_BY(mu) = 0;
  };
  FineProgress progress;
  std::vector<FineResult> fine_results(coarse_result.clusters.size());
  ThreadPool::ParallelFor(
      options_.num_threads, coarse_result.clusters.size(), [&](size_t ci) {
        fine_results[ci] =
            fine.RunOnCluster(corpus, coarse_result.clusters[ci],
                              cost_model, &coarse_result.doc_top_phrases);
        MutexLock lock(&progress.mu);
        ++progress.clusters_done;
        progress.templates_found += fine_results[ci].templates.size();
      });
  for (size_t ci = 0; ci < coarse_result.clusters.size(); ++ci) {
    FineResult& fr = fine_results[ci];
    result.fine_stats.MergeFrom(fr.stats);

    ClusterStats stats;
    stats.coarse_cluster_index = ci;
    stats.num_docs = coarse_result.clusters[ci].size();
    stats.num_templates = fr.templates.size();
    stats.cost_before = fr.cost_before;
    stats.cost_after = fr.cost_after;
    stats.relative_length = fr.relative_length();
    stats.lower_bound = RelativeLengthLowerBound(
        std::max<size_t>(fr.templates.size(), 1), stats.num_docs,
        cost_model.lg_vocab());
    result.cluster_stats.push_back(stats);

    for (TemplateCluster& tc : fr.templates) {
      const int64_t template_index =
          static_cast<int64_t>(result.templates.size());
      for (DocId d : tc.members) {
        result.doc_template[d] = template_index;
      }
      result.templates.push_back(std::move(tc));
      result.template_coarse_cluster.push_back(ci);
    }
  }
  result.fine_seconds = timer.ElapsedSeconds();
  {
    // The guarded tallies and the deterministic merge must agree; a
    // mismatch means a worker raced or a cluster was dropped.
    MutexLock lock(&progress.mu);
    CHECK_EQ(progress.clusters_done, coarse_result.clusters.size());
    CHECK_EQ(progress.templates_found, result.templates.size());
  }
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInfoShieldResult(result, corpus));
  return result;
}

Status ValidateInfoShieldResult(const InfoShieldResult& result,
                                const Corpus& corpus) {
  for (const TemplateCluster& tc : result.templates) {
    INFOSHIELD_RETURN_IF_ERROR(ValidateTemplateCluster(tc, corpus));
  }
  audit::Auditor a("InfoShieldResult");
  a.Expect(result.doc_template.size() == corpus.size(),
           StrFormat("doc_template has %zu labels for %zu documents",
                     result.doc_template.size(), corpus.size()));
  a.Expect(result.template_coarse_cluster.size() == result.templates.size(),
           StrFormat("template_coarse_cluster has %zu entries for %zu "
                     "templates",
                     result.template_coarse_cluster.size(),
                     result.templates.size()));
  // Labels and member lists must be exact inverses.
  size_t member_total = 0;
  for (size_t t = 0; t < result.templates.size(); ++t) {
    member_total += result.templates[t].members.size();
    for (DocId d : result.templates[t].members) {
      if (d < result.doc_template.size()) {
        a.Expect(result.doc_template[d] == static_cast<int64_t>(t),
                 StrFormat("document %u is a member of template %zu but "
                           "carries label %lld",
                           d, t,
                           static_cast<long long>(result.doc_template[d])));
      }
    }
  }
  size_t labeled = 0;
  for (size_t d = 0; d < result.doc_template.size(); ++d) {
    const int64_t label = result.doc_template[d];
    a.Expect(label >= -1 &&
                 label < static_cast<int64_t>(result.templates.size()),
             StrFormat("document %zu has out-of-range label %lld", d,
                       static_cast<long long>(label)));
    if (label >= 0) ++labeled;
  }
  a.Expect(labeled == member_total,
           StrFormat("%zu labeled documents but %zu template members",
                     labeled, member_total));
  for (const ClusterStats& s : result.cluster_stats) {
    a.Expect(std::isfinite(s.cost_before) && s.cost_before >= 0.0 &&
                 std::isfinite(s.cost_after) && s.cost_after >= 0.0,
             StrFormat("cluster %zu stats carry negative or non-finite "
                       "costs",
                       s.coarse_cluster_index));
  }
  return a.Finish();
}

}  // namespace infoshield
