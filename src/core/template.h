// Template: the unit of InfoShield's summaries (paper §III-A).
//
// A template is a sequence of constant tokens plus *slots* — gap positions
// whose content is expected to differ per document (the '*' of Table IV).
// A gap index g in [0, length] denotes the position before constant token
// g (g == length: after the last token).
//
// EncodeDocument aligns a document against the template's constants with
// Needleman–Wunsch and then redistributes edit operations into slots:
//   * an insertion whose gap carries a slot is absorbed: the word becomes
//     slot content (paid via S(w), Eq. 4) instead of an unmatched op;
//   * a substitution whose gap carries a slot contributes its document
//     word to the slot and leaves a residual deletion of the constant
//     token, keeping the encoding lossless;
//   * everything else stays a regular unmatched operation (location +
//     2-bit op type + vocabulary index where applicable).
// Gap attribution follows Algorithm 3: the gap counter advances on
// matched and deleted columns only.

#ifndef INFOSHIELD_CORE_TEMPLATE_H_
#define INFOSHIELD_CORE_TEMPLATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdl/cost_model.h"
#include "msa/pairwise.h"
#include "text/corpus.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

struct Template {
  std::vector<TokenId> tokens;
  // slot_at_gap[g] == true iff there is a slot at gap g; size is
  // tokens.size() + 1. Empty means "no slots anywhere".
  std::vector<uint8_t> slot_at_gap;

  Template() = default;
  explicit Template(std::vector<TokenId> constant_tokens);

  size_t length() const { return tokens.size(); }
  size_t num_slots() const;
  bool HasSlotAtGap(size_t gap) const;
  void SetSlotAtGap(size_t gap, bool enabled);

  // Indices of enabled gaps, ascending.
  std::vector<size_t> SlotGaps() const;

  // Human-readable form with '*' for slots, e.g. "this is a great * and".
  std::string ToString(const Vocabulary& vocab) const;

  // Deep invariant audit (util/audit.h): the slot table is either empty
  // or exactly tokens.size() + 1 entries of 0/1, and every constant token
  // is a valid (non-sentinel) id. Returns OK or an Internal status
  // listing every violation.
  Status ValidateInvariants() const;
};

// How one alignment column is rendered/charged after slot absorption.
enum class ColumnKind : uint8_t {
  kConstant = 0,      // matched template token
  kSlotFill = 1,      // document word absorbed into a slot
  kInsertion = 2,     // unmatched inserted word
  kDeletion = 3,      // unmatched deleted template token
  kSubstitution = 4,  // unmatched substituted word
};

struct AnnotatedColumn {
  ColumnKind kind;
  TokenId template_token = kInvalidToken;  // constant/deletion/substitution
  TokenId doc_token = kInvalidToken;       // everything carrying a doc word
  // Gap the column was attributed to (slot index resolution).
  uint32_t gap = 0;
};

// One document's encoding against a template.
struct DocEncoding {
  // Per-column annotation (for cost and visualization).
  std::vector<AnnotatedColumn> columns;
  // Slot contents, one vector per enabled slot gap (ascending gap order).
  std::vector<std::vector<TokenId>> slot_words;
  // Summary fed to the cost model.
  EncodingSummary summary;
  // AlignmentCostBase(summary) — excludes the lg t template-id term.
  double base_cost = 0.0;
};

// Aligns `doc_tokens` against `tmpl` and computes its encoding.
DocEncoding EncodeDocument(const Template& tmpl,
                           const std::vector<TokenId>& doc_tokens,
                           const CostModel& cost_model);

// Same, but reuses a precomputed alignment of doc_tokens against
// tmpl.tokens (the alignment does not depend on the slot mask, so slot
// search recomputes encodings without re-aligning).
DocEncoding EncodeDocumentWithAlignment(const Template& tmpl,
                                        const Alignment& alignment,
                                        const CostModel& cost_model);

// Deep audit of one document's encoding against its template: the edit
// trace replays losslessly to the original token sequence (constants,
// slot fills, insertions and substitutions concatenate back to
// `doc_tokens`; constants/deletions/substitutions consume the template's
// tokens in order), gap attribution is monotone and only advances on
// constant/deleted columns, slot fills land on enabled gaps and agree
// with `slot_words`, and the cost summary recounts from the columns.
// When `cost_model` is given, also verifies base_cost matches it. Returns
// OK or an Internal status listing every violation.
Status ValidateDocEncoding(const Template& tmpl,
                           const std::vector<TokenId>& doc_tokens,
                           const DocEncoding& enc,
                           const CostModel* cost_model = nullptr);

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_TEMPLATE_H_
