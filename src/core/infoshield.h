// End-to-end InfoShield pipeline: InfoShield-Coarse -> InfoShield-Fine.
//
// The final model M is the union of the template sets found in every
// coarse cluster (paper §IV-B5). Documents encoded by some template are
// "suspicious" (the binary labeling used for precision/recall in §V-A5);
// the template a document belongs to is its predicted cluster label (the
// clustering used for ARI).

#ifndef INFOSHIELD_CORE_INFOSHIELD_H_
#define INFOSHIELD_CORE_INFOSHIELD_H_

#include <cstdint>
#include <vector>

#include "coarse/coarse_clustering.h"
#include "core/fine_clustering.h"
#include "text/corpus.h"
#include "util/status.h"

namespace infoshield {

struct InfoShieldOptions {
  CoarseOptions coarse;
  FineOptions fine;
  // Worker threads for both stages: the coarse pipeline (sharded df
  // accumulation, per-document top-phrase selection, edge generation)
  // and the fine stage (coarse clusters are independent). Overrides
  // coarse.num_threads. 1 = sequential; 0 = hardware concurrency.
  // Results are bit-identical for any thread count: coarse edges replay
  // in canonical order and fine clusters merge in deterministic order.
  size_t num_threads = 1;
};

// Per-coarse-cluster compression statistics (drives Fig. 3).
struct ClusterStats {
  size_t coarse_cluster_index = 0;
  size_t num_docs = 0;
  size_t num_templates = 0;
  double cost_before = 0.0;
  double cost_after = 0.0;
  double relative_length = 1.0;
  // Lemma 1 bound for this cluster's (t, n).
  double lower_bound = 0.0;
};

struct InfoShieldResult {
  // All accepted templates across coarse clusters.
  std::vector<TemplateCluster> templates;
  // Coarse cluster index each template came from (parallel to templates).
  std::vector<size_t> template_coarse_cluster;
  // Stats per coarse cluster that reached the fine stage.
  std::vector<ClusterStats> cluster_stats;
  // Per document: index into `templates`, or -1 if unclustered. Documents
  // with label >= 0 are the "suspicious" set.
  std::vector<int64_t> doc_template;
  // Coarse-stage diagnostics.
  size_t num_coarse_clusters = 0;
  size_t num_singletons = 0;
  // Wall-clock breakdown in seconds.
  double coarse_seconds = 0.0;
  double fine_seconds = 0.0;
  // Fine-stage hot-path counters summed over all coarse clusters (never
  // part of the canonical JSON; see FineStageStats).
  FineStageStats fine_stats;
  // Coarse-stage per-phase timings and shard diagnostics (never part of
  // the canonical JSON; see CoarseStageStats).
  CoarseStageStats coarse_stats;

  bool IsSuspicious(DocId d) const { return doc_template[d] >= 0; }
  size_t num_suspicious() const;
};

class InfoShield {
 public:
  InfoShield() = default;
  explicit InfoShield(InfoShieldOptions options) : options_(options) {}

  InfoShieldResult Run(const Corpus& corpus) const;

  const InfoShieldOptions& options() const { return options_; }

 private:
  InfoShieldOptions options_;
};

// Deep invariant audit (util/audit.h): every template cluster validates
// against the corpus, doc_template is a consistent inverse of the
// clusters' member lists (label i <=> member of templates[i]), the
// parallel template_coarse_cluster array lines up, and the per-cluster
// stats carry finite costs. Returns OK or an Internal status listing
// every violation.
Status ValidateInfoShieldResult(const InfoShieldResult& result,
                                const Corpus& corpus);

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_INFOSHIELD_H_
