#include "core/visualize.h"

#include "util/string_util.h"

namespace infoshield {

namespace {

constexpr const char* kAnsiReset = "\x1b[0m";
constexpr const char* kAnsiRed = "\x1b[31m";
constexpr const char* kAnsiGreen = "\x1b[32m";
constexpr const char* kAnsiYellow = "\x1b[33m";
constexpr const char* kAnsiBlue = "\x1b[34m";
constexpr const char* kAnsiBold = "\x1b[1m";

void AppendColored(std::string& out, const std::string& text,
                   const char* color, bool use_color) {
  if (use_color) out += color;
  out += text;
  if (use_color) out += kAnsiReset;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

size_t DocLimit(size_t total, const VisualizeOptions& options) {
  if (options.max_docs == 0) return total;
  return std::min(total, options.max_docs);
}

}  // namespace

std::string RenderTemplateAnsi(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const VisualizeOptions& options) {
  const Vocabulary& vocab = corpus.vocab();
  std::string out;
  out += options.use_color ? kAnsiBold : "";
  out += "Template (";
  out += std::to_string(cluster.members.size());
  out += " docs): ";
  if (options.use_color) out += kAnsiReset;

  // Template line: constants plain, '*' slots in red.
  const Template& t = cluster.tmpl;
  for (size_t i = 0; i <= t.tokens.size(); ++i) {
    if (t.HasSlotAtGap(i)) {
      AppendColored(out, "*", kAnsiRed, options.use_color);
      out.push_back(' ');
    }
    if (i < t.tokens.size()) {
      out += vocab.Word(t.tokens[i]);
      out.push_back(' ');
    }
  }
  out.push_back('\n');

  const size_t limit = DocLimit(cluster.members.size(), options);
  for (size_t d = 0; d < limit; ++d) {
    out += StrFormat("  #%-4u ", cluster.members[d]);
    for (const AnnotatedColumn& col : cluster.encodings[d].columns) {
      switch (col.kind) {
        case ColumnKind::kConstant:
          out += vocab.Word(col.doc_token);
          break;
        case ColumnKind::kSlotFill:
          AppendColored(out, vocab.Word(col.doc_token), kAnsiRed,
                        options.use_color);
          break;
        case ColumnKind::kInsertion:
          AppendColored(out, "+" + vocab.Word(col.doc_token), kAnsiGreen,
                        options.use_color);
          break;
        case ColumnKind::kDeletion:
          AppendColored(out, "[-" + vocab.Word(col.template_token) + "]",
                        kAnsiBlue, options.use_color);
          break;
        case ColumnKind::kSubstitution:
          AppendColored(out,
                        vocab.Word(col.doc_token) + "(~" +
                            vocab.Word(col.template_token) + ")",
                        kAnsiYellow, options.use_color);
          break;
      }
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  if (limit < cluster.members.size()) {
    out += StrFormat("  ... %zu more\n", cluster.members.size() - limit);
  }
  return out;
}

std::string RenderTemplateHtml(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const VisualizeOptions& options) {
  const Vocabulary& vocab = corpus.vocab();
  std::string out = "<div class=\"infoshield-cluster\">\n";
  out += StrFormat("<div class=\"tmpl\"><b>Template</b> (%zu docs): ",
                   cluster.members.size());
  const Template& t = cluster.tmpl;
  for (size_t i = 0; i <= t.tokens.size(); ++i) {
    if (t.HasSlotAtGap(i)) out += "<span class=\"slot\">*</span> ";
    if (i < t.tokens.size()) {
      out += HtmlEscape(vocab.Word(t.tokens[i]));
      out.push_back(' ');
    }
  }
  out += "</div>\n<ul>\n";
  const size_t limit = DocLimit(cluster.members.size(), options);
  for (size_t d = 0; d < limit; ++d) {
    out += StrFormat("<li>#%u: ", cluster.members[d]);
    for (const AnnotatedColumn& col : cluster.encodings[d].columns) {
      switch (col.kind) {
        case ColumnKind::kConstant:
          out += HtmlEscape(vocab.Word(col.doc_token));
          break;
        case ColumnKind::kSlotFill:
          out += "<span class=\"slot\">" + HtmlEscape(vocab.Word(col.doc_token)) +
                 "</span>";
          break;
        case ColumnKind::kInsertion:
          out += "<span class=\"ins\">" + HtmlEscape(vocab.Word(col.doc_token)) +
                 "</span>";
          break;
        case ColumnKind::kDeletion:
          out += "<span class=\"del\">" +
                 HtmlEscape(vocab.Word(col.template_token)) + "</span>";
          break;
        case ColumnKind::kSubstitution:
          out += "<span class=\"sub\">" + HtmlEscape(vocab.Word(col.doc_token)) +
                 "</span>";
          break;
      }
      out.push_back(' ');
    }
    out += "</li>\n";
  }
  if (limit < cluster.members.size()) {
    out += StrFormat("<li>... %zu more</li>\n",
                     cluster.members.size() - limit);
  }
  out += "</ul>\n</div>\n";
  return out;
}

std::string RenderReportHtml(const std::vector<TemplateCluster>& clusters,
                             const Corpus& corpus,
                             const VisualizeOptions& options) {
  std::string out =
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>InfoShield report</title>\n<style>\n"
      "body { font-family: sans-serif; }\n"
      ".infoshield-cluster { border: 1px solid #ccc; margin: 8px; "
      "padding: 8px; }\n"
      ".slot { color: #c00; font-weight: bold; }\n"
      ".ins { color: #080; }\n"
      ".del { color: #04c; text-decoration: line-through; }\n"
      ".sub { color: #a80; }\n"
      "</style></head><body>\n";
  out += StrFormat("<h1>InfoShield report: %zu micro-clusters</h1>\n",
                   clusters.size());
  for (const TemplateCluster& c : clusters) {
    out += RenderTemplateHtml(c, corpus, options);
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace infoshield
