#include "core/ranking.h"

#include <algorithm>

#include "util/logging.h"

namespace infoshield {

std::vector<double> MemberCompressionRatios(const TemplateCluster& cluster,
                                            const Corpus& corpus,
                                            const CostModel& cost_model) {
  std::vector<double> ratios;
  ratios.reserve(cluster.members.size());
  for (size_t m = 0; m < cluster.members.size(); ++m) {
    const double raw =
        cost_model.UnencodedDocCost(corpus.doc(cluster.members[m]).length());
    const double encoded = cluster.encodings[m].base_cost;
    ratios.push_back(raw > 0.0 ? encoded / raw : 1.0);
  }
  return ratios;
}

std::vector<size_t> FlagAnomalousMembers(const TemplateCluster& cluster,
                                         const Corpus& corpus,
                                         const CostModel& cost_model,
                                         double tolerance) {
  std::vector<double> ratios =
      MemberCompressionRatios(cluster, corpus, cost_model);
  if (ratios.empty()) return {};
  std::vector<double> sorted(ratios);
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<size_t> flagged;
  for (size_t m = 0; m < ratios.size(); ++m) {
    if (ratios[m] > median + tolerance) flagged.push_back(m);
  }
  return flagged;
}

std::vector<RankedTemplate> RankTemplates(const InfoShieldResult& result,
                                          const Corpus& corpus,
                                          const CostModel& cost_model) {
  std::vector<RankedTemplate> ranked;
  ranked.reserve(result.templates.size());
  for (size_t t = 0; t < result.templates.size(); ++t) {
    const TemplateCluster& tc = result.templates[t];
    RankedTemplate r;
    r.template_index = t;
    r.num_docs = tc.members.size();
    double raw = 0.0;
    double encoded = cost_model.TemplateCost(tc.tmpl.length(),
                                             tc.tmpl.num_slots());
    for (size_t m = 0; m < tc.members.size(); ++m) {
      raw += cost_model.UnencodedDocCost(
          corpus.doc(tc.members[m]).length());
      encoded += tc.encodings[m].base_cost;
    }
    r.relative_length = RelativeLength(encoded, raw);
    r.lower_bound = RelativeLengthLowerBound(1, std::max<size_t>(1, r.num_docs),
                                             cost_model.lg_vocab());
    r.slack = r.relative_length - r.lower_bound;
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedTemplate& a, const RankedTemplate& b) {
              if (a.slack != b.slack) return a.slack < b.slack;
              if (a.num_docs != b.num_docs) return a.num_docs > b.num_docs;
              return a.template_index < b.template_index;
            });
  return ranked;
}

}  // namespace infoshield
