#include "core/slot_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/audit.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

const GapCostProfile::GapEdits* GapCostProfile::FindGap(size_t gap) const {
  auto it = std::lower_bound(
      edits.begin(), edits.end(), gap,
      [](const GapEdits& e, size_t g) { return e.gap < g; });
  if (it == edits.end() || it->gap != gap) return nullptr;
  return &*it;
}

GapCostProfile BuildGapCostProfile(const Alignment& alignment) {
  GapCostProfile profile;
  size_t x = 0;  // Algorithm 3's gap counter
  auto edits_at = [&profile](size_t gap) -> GapCostProfile::GapEdits& {
    // The walk visits gaps in non-decreasing order, so appending keeps
    // `edits` sorted.
    if (profile.edits.empty() || profile.edits.back().gap != gap) {
      GapCostProfile::GapEdits e;
      e.gap = gap;
      profile.edits.push_back(e);
    }
    return profile.edits.back();
  };
  for (const AlignOp& op : alignment.ops) {
    switch (op.type) {
      case AlignOpType::kMatch:
        ++profile.constant_columns;
        ++x;
        break;
      case AlignOpType::kDelete:
        ++profile.constant_columns;
        ++profile.deletions;
        ++x;
        break;
      case AlignOpType::kInsert:
        ++edits_at(x).insertions;
        break;
      case AlignOpType::kSubstitute:
        ++edits_at(x).substitutions;
        break;
    }
  }
  return profile;
}

EncodingSummary SummaryForSlotMask(const GapCostProfile& profile,
                                   const std::vector<size_t>& slot_gaps) {
  EncodingSummary s;
  s.alignment_length = profile.constant_columns;
  s.unmatched = profile.deletions;
  s.slot_word_counts.assign(slot_gaps.size(), 0);
  // Merge the two ascending sequences: edits inside a slotted gap turn
  // into slot words (substitutions additionally leave a residual
  // deletion column); edits elsewhere stay unmatched alignment columns.
  size_t si = 0;
  for (const GapCostProfile::GapEdits& e : profile.edits) {
    while (si < slot_gaps.size() && slot_gaps[si] < e.gap) ++si;
    if (si < slot_gaps.size() && slot_gaps[si] == e.gap) {
      s.slot_word_counts[si] = e.insertions + e.substitutions;
      s.alignment_length += e.substitutions;
      s.unmatched += e.substitutions;
    } else {
      const size_t words = e.insertions + e.substitutions;
      s.alignment_length += words;
      s.unmatched += words;
      s.inserted_or_substituted += words;
    }
  }
  return s;
}

const char* SlotContentKindToString(SlotContentKind kind) {
  switch (kind) {
    case SlotContentKind::kEmpty:
      return "empty";
    case SlotContentKind::kPhone:
      return "phone";
    case SlotContentKind::kPrice:
      return "price";
    case SlotContentKind::kTime:
      return "time";
    case SlotContentKind::kUrl:
      return "url";
    case SlotContentKind::kNumeric:
      return "numeric";
    case SlotContentKind::kName:
      return "name";
    case SlotContentKind::kFreeText:
      return "free-text";
  }
  return "unknown";
}

namespace {

bool IsDigitRun(const std::string& w, size_t min_len) {
  if (w.size() < min_len) return false;
  for (char c : w) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// A token is "numeric" when digits dominate it; a word with a short
// numeric suffix (e.g. a counter or year glued to a word) is not.
bool IsNumericToken(const std::string& w) {
  if (w.empty()) return false;
  size_t digits = 0;
  for (char c : w) {
    if (c >= '0' && c <= '9') ++digits;
  }
  return digits * 2 >= w.size();
}

// Strips a trailing digit run ("appointment5" -> "appointment") so
// keyword matching sees the stem.
std::string StripTrailingDigits(const std::string& w) {
  size_t end = w.size();
  while (end > 0 && w[end - 1] >= '0' && w[end - 1] <= '9') --end;
  return w.substr(0, end);
}

bool IsTimeWord(const std::string& raw) {
  const std::string w = StripTrailingDigits(raw);
  static const char* kTimeWords[] = {
      "am",    "pm",      "hour",  "hours",   "day",    "days",  "daily",
      "open",  "until",   "late",  "night",   "week",   "weekend",
      "weekends", "weekdays", "morning", "evening", "noon", "midnight",
      "anytime", "appointment", "schedule", "today", "tonight", "now",
  };
  for (const char* t : kTimeWords) {
    if (w == t) return true;
  }
  // "9am", "10pm", "24hr" style (digit prefix + unit suffix).
  if (w.size() >= 3 && w[0] >= '0' && w[0] <= '9') {
    std::string tail2 = w.substr(w.size() - 2);
    if (tail2 == "am" || tail2 == "pm" || tail2 == "hr") return true;
  }
  return false;
}

bool IsPriceWord(const std::string& raw) {
  const std::string w = StripTrailingDigits(raw);
  static const char* kPriceWords[] = {
      "dollar", "dollars", "price",   "rate",  "special", "discount",
      "deal",   "offer",   "session", "per",   "half",    "full",
      "$",      "usd",     "cost",    "fee",
  };
  for (const char* t : kPriceWords) {
    if (w == t) return true;
  }
  // Bare small numbers (30..300 style) read as prices in ad context.
  if (IsDigitRun(raw, 2) && raw.size() <= 3) return true;
  return false;
}

bool IsUrlWord(const std::string& w) {
  return StartsWith(w, "http") || EndsWith(w, ".com") ||
         EndsWith(w, ".net") || w.find("://") != std::string::npos ||
         w.find(".com") != std::string::npos;
}

}  // namespace

namespace internal {

SlotContentKind ClassifyFills(const std::vector<std::string>& fills) {
  if (fills.empty()) return SlotContentKind::kEmpty;
  size_t phone_hits = 0;
  size_t price_hits = 0;
  size_t time_hits = 0;
  size_t url_hits = 0;
  size_t numeric_hits = 0;
  size_t single_word = 0;
  size_t total_words = 0;
  std::unordered_set<std::string> distinct;

  for (const std::string& fill : fills) {
    distinct.insert(fill);
    std::vector<std::string> words = SplitWhitespace(fill);
    total_words += words.size();
    if (words.size() == 1) ++single_word;
    bool any_phone = false;
    bool any_price = false;
    bool any_time = false;
    bool any_url = false;
    bool any_numeric = false;
    for (const std::string& w : words) {
      if (IsDigitRun(w, 7)) any_phone = true;
      if (IsUrlWord(w)) any_url = true;
      if (IsTimeWord(w)) any_time = true;
      if (IsPriceWord(w)) any_price = true;
      if (IsNumericToken(w)) any_numeric = true;
    }
    if (any_phone) ++phone_hits;
    if (any_url) ++url_hits;
    if (any_time) ++time_hits;
    if (any_price) ++price_hits;
    if (any_numeric) ++numeric_hits;
  }

  const double n = static_cast<double>(fills.size());
  auto majority = [n](size_t hits) { return hits / n >= 0.5; };
  // Phone and URL are the most specific signals; time beats price when
  // both fire ("until 9pm" contains a number but is schedule content).
  if (majority(phone_hits)) return SlotContentKind::kPhone;
  if (majority(url_hits)) return SlotContentKind::kUrl;
  if (majority(time_hits)) return SlotContentKind::kTime;
  if (majority(price_hits)) return SlotContentKind::kPrice;
  if (majority(numeric_hits)) return SlotContentKind::kNumeric;
  // Names: single short tokens with high variety.
  if (single_word == fills.size() &&
      distinct.size() * 2 >= fills.size()) {
    return SlotContentKind::kName;
  }
  return SlotContentKind::kFreeText;
}

}  // namespace internal

std::vector<SlotProfile> AnalyzeSlots(const TemplateCluster& cluster,
                                      const Corpus& corpus,
                                      const SlotAnalysisOptions& options) {
  const std::vector<size_t> gaps = cluster.tmpl.SlotGaps();
  std::vector<SlotProfile> profiles(gaps.size());
  const Vocabulary& vocab = corpus.vocab();

  for (size_t s = 0; s < gaps.size(); ++s) {
    SlotProfile& profile = profiles[s];
    profile.gap = gaps[s];

    std::vector<std::string> fills;  // non-empty fills
    size_t empty = 0;
    size_t total_words = 0;
    for (const DocEncoding& enc : cluster.encodings) {
      if (s >= enc.slot_words.size() || enc.slot_words[s].empty()) {
        ++empty;
        continue;
      }
      std::string fill;
      for (size_t w = 0; w < enc.slot_words[s].size(); ++w) {
        if (w > 0) fill.push_back(' ');
        fill += vocab.Word(enc.slot_words[s][w]);
      }
      total_words += enc.slot_words[s].size();
      fills.push_back(std::move(fill));
    }

    const size_t members = cluster.encodings.size();
    profile.empty_fraction =
        members == 0 ? 0.0
                     : static_cast<double>(empty) /
                           static_cast<double>(members);
    std::unordered_set<std::string> distinct(fills.begin(), fills.end());
    profile.distinct_fraction =
        fills.empty() ? 0.0
                      : static_cast<double>(distinct.size()) /
                            static_cast<double>(fills.size());
    profile.mean_words =
        fills.empty() ? 0.0
                      : static_cast<double>(total_words) /
                            static_cast<double>(fills.size());
    profile.kind = internal::ClassifyFills(fills);

    // determinism: unordered gather, sorted before use on the next line.
    std::vector<std::string> examples(distinct.begin(), distinct.end());
    std::sort(examples.begin(), examples.end());
    if (examples.size() > options.max_examples) {
      examples.resize(options.max_examples);
    }
    profile.examples = std::move(examples);
  }
  INFOSHIELD_AUDIT_INVARIANTS(ValidateSlotProfiles(profiles, cluster.tmpl));
  return profiles;
}

Status ValidateSlotProfiles(const std::vector<SlotProfile>& profiles,
                            const Template& tmpl) {
  INFOSHIELD_RETURN_IF_ERROR(tmpl.ValidateInvariants());
  audit::Auditor a("SlotProfiles");
  const std::vector<size_t> gaps = tmpl.SlotGaps();
  a.Expect(profiles.size() == gaps.size(),
           StrFormat("%zu profiles for %zu enabled slots", profiles.size(),
                     gaps.size()));
  for (size_t s = 0; s < profiles.size(); ++s) {
    const SlotProfile& p = profiles[s];
    if (s < gaps.size()) {
      a.Expect(p.gap == gaps[s],
               StrFormat("profile #%zu covers gap %zu, expected %zu", s,
                         p.gap, gaps[s]));
    }
    a.Expect(p.empty_fraction >= 0.0 && p.empty_fraction <= 1.0,
             StrFormat("profile #%zu empty_fraction outside [0, 1]", s));
    a.Expect(p.distinct_fraction >= 0.0 && p.distinct_fraction <= 1.0,
             StrFormat("profile #%zu distinct_fraction outside [0, 1]", s));
    a.Expect(std::isfinite(p.mean_words) && p.mean_words >= 0.0,
             StrFormat("profile #%zu mean_words negative or non-finite", s));
    if (p.kind == SlotContentKind::kEmpty) {
      a.Expect(p.examples.empty() && p.mean_words == 0.0,
               StrFormat("profile #%zu classified empty but carries fills",
                         s));
    }
  }
  return a.Finish();
}

std::string RenderSlotProfiles(const std::vector<SlotProfile>& profiles) {
  std::string out;
  for (const SlotProfile& p : profiles) {
    out += StrFormat(
        "  slot@%-3zu kind=%-9s empty=%.0f%% distinct=%.0f%% "
        "mean_words=%.1f  e.g. ",
        p.gap, SlotContentKindToString(p.kind), 100.0 * p.empty_fraction,
        100.0 * p.distinct_fraction, p.mean_words);
    for (size_t i = 0; i < p.examples.size(); ++i) {
      if (i > 0) out += " | ";
      out += "\"" + p.examples[i] + "\"";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace infoshield
