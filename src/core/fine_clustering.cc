#include "core/fine_clustering.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/slot_analysis.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace infoshield {

void FineStageStats::MergeFrom(const FineStageStats& other) {
  alignments_computed += other.alignments_computed;
  consensus_probes += other.consensus_probes;
  consensus_cache_hits += other.consensus_cache_hits;
  slot_candidates_evaluated += other.slot_candidates_evaluated;
}

double FineStageStats::cache_hit_rate() const {
  if (consensus_probes == 0) return 0.0;
  return static_cast<double>(consensus_cache_hits) /
         static_cast<double>(consensus_probes);
}

namespace {

// Total cluster cost (Definition 1) for a set of accepted templates.
// shapes: (length, slots) per template; encoded_base: per template, the
// sum of its members' AlignmentCostBase; num_encoded: total docs encoded.
double TotalCost(const CostModel& cm, size_t num_docs,
                 const std::vector<std::pair<size_t, size_t>>& shapes,
                 const std::vector<double>& encoded_base, size_t num_encoded,
                 double noise_token_cost) {
  double cost = cm.ModelCost(shapes);
  cost += static_cast<double>(num_docs);  // 1-bit template flag per doc
  cost += noise_token_cost;
  const double lg_t = Log2Bits(shapes.size());
  for (double base : encoded_base) cost += base;
  cost += lg_t * static_cast<double>(num_encoded);
  return cost;
}

}  // namespace

double FineClustering::CandidateDataCost(
    const std::vector<TokenId>& consensus,
    const std::vector<std::vector<TokenId>>& docs,
    const CostModel& cost_model, FineStageStats* stats) const {
  // Evaluate the candidate the way it would actually be used: slots
  // detected, model cost included. Scoring data cost alone (a literal
  // reading of Eq. 6) systematically prefers bloated consensuses —
  // every variant branch kept as constants, paid for with cheap
  // deletions — which then fail the MDL acceptance test; the paper's
  // stated goal is total-cost minimization, so the search target is
  // C(T_i) + C(D_i | T_i) after slot detection.
  Template tmpl(consensus);
  std::vector<Alignment> alignments;
  alignments.reserve(docs.size());
  for (const auto& doc : docs) {
    alignments.push_back(NeedlemanWunsch(tmpl.tokens, doc, options_.scoring));
  }
  if (stats != nullptr) stats->alignments_computed += docs.size();
  DetectSlotsNaive(tmpl, alignments, cost_model, stats);
  double cost = cost_model.TemplateCost(tmpl.length(), tmpl.num_slots());
  for (const Alignment& a : alignments) {
    cost += EncodeDocumentWithAlignment(tmpl, a, cost_model).base_cost;
  }
  return cost;
}

FineClustering::ConsensusChoice FineClustering::EvaluateCandidate(
    const std::vector<TokenId>& consensus,
    const std::vector<std::vector<TokenId>>& docs,
    const CostModel& cost_model, FineStageStats* stats) const {
  ConsensusChoice choice;
  choice.consensus = consensus;
  choice.tmpl = Template(consensus);
  choice.alignments.reserve(docs.size());
  AlignmentWorkspace workspace;
  for (const auto& doc : docs) {
    choice.alignments.push_back(NeedlemanWunsch(choice.tmpl.tokens, doc,
                                                options_.scoring, &workspace));
  }
  if (stats != nullptr) stats->alignments_computed += docs.size();
  std::vector<double> base_costs;
  DetectSlotsIncremental(choice.tmpl, choice.alignments, cost_model, stats,
                         &base_costs);
  // Same accumulation order as CandidateDataCost: template cost first,
  // then per-document bases — floating-point addition is not
  // associative, and the naive path must match bit for bit.
  choice.cost =
      cost_model.TemplateCost(choice.tmpl.length(), choice.tmpl.num_slots());
  for (double base : base_costs) choice.cost += base;
  return choice;
}

FineClustering::ConsensusChoice FineClustering::SearchConsensus(
    const MsaAligner& alignment,
    const std::vector<std::vector<TokenId>>& candidate_docs,
    const CostModel& cost_model, FineStageStats* stats) const {
  const size_t n = candidate_docs.size();
  CHECK_GE(n, 1u);
  const int64_t h_max = static_cast<int64_t>(n) - 1;
  const bool naive = options_.use_naive_costing;

  // Distinct thresholds frequently select the same sub-alignment
  // (supports are integers in [0, n); near-duplicate candidate sets
  // concentrate them at the extremes), so probe results are cached at
  // two levels: per threshold, and per distinct consensus sequence. A
  // consensus-level hit reuses every member alignment and the detected
  // slots. The map is ordered to keep the code free of hash-order
  // pitfalls; it is lookup-only either way.
  std::map<std::vector<TokenId>, ConsensusChoice> by_consensus;
  std::unordered_map<int64_t, double> cache;
  auto eval = [&](int64_t h) -> double {
    h = std::clamp<int64_t>(h, 0, h_max);
    auto it = cache.find(h);
    if (it != cache.end()) return it->second;
    std::vector<TokenId> consensus =
        alignment.ConsensusAtThreshold(static_cast<size_t>(h));
    if (stats != nullptr) ++stats->consensus_probes;
    double cost;
    if (naive) {
      cost = CandidateDataCost(consensus, candidate_docs, cost_model, stats);
    } else {
      auto found = by_consensus.find(consensus);
      if (found != by_consensus.end()) {
        if (stats != nullptr) ++stats->consensus_cache_hits;
        cost = found->second.cost;
      } else {
        ConsensusChoice evaluated =
            EvaluateCandidate(consensus, candidate_docs, cost_model, stats);
        cost = evaluated.cost;
        by_consensus.emplace(std::move(consensus), std::move(evaluated));
      }
    }
    cache.emplace(h, cost);
    return cost;
  };

  int64_t best_h = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&](int64_t h) {
    h = std::clamp<int64_t>(h, 0, h_max);
    double c = eval(h);
    if (c < best_cost || (c == best_cost && h < best_h)) {
      best_cost = c;
      best_h = h;
    }
  };

  if (options_.exhaustive_consensus_search) {
    for (int64_t h = 0; h <= h_max; ++h) consider(h);
  } else {
    // Dichotomous search (Algorithm 2), plus argmin over all probes.
    int64_t lo = 0;
    int64_t hi = h_max;
    while (lo < hi) {
      int64_t mid = (lo + hi) / 2;
      double left = eval(mid - 1);
      double right = eval(mid + 1);
      consider(mid - 1);
      consider(mid);
      consider(mid + 1);
      if (left <= right) {
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    consider(lo);
  }

  std::vector<TokenId> winner =
      alignment.ConsensusAtThreshold(static_cast<size_t>(best_h));
  if (!naive) {
    auto found = by_consensus.find(winner);
    CHECK(found != by_consensus.end());
    return std::move(found->second);
  }
  // Naive escape hatch: rebuild the winner's template the way the
  // pre-optimization code did — re-align every member and run full
  // slot detection once more.
  ConsensusChoice choice;
  choice.consensus = std::move(winner);
  choice.cost = best_cost;
  choice.tmpl = Template(choice.consensus);
  choice.alignments.reserve(candidate_docs.size());
  for (const auto& doc : candidate_docs) {
    choice.alignments.push_back(
        NeedlemanWunsch(choice.tmpl.tokens, doc, options_.scoring));
  }
  if (stats != nullptr) stats->alignments_computed += candidate_docs.size();
  DetectSlotsNaive(choice.tmpl, choice.alignments, cost_model, stats);
  return choice;
}

std::vector<TokenId> FineClustering::ConsensusSearch(
    const MsaAligner& alignment,
    const std::vector<std::vector<TokenId>>& candidate_docs,
    const CostModel& cost_model) const {
  return SearchConsensus(alignment, candidate_docs, cost_model, nullptr)
      .consensus;
}

namespace {

// Candidate gaps: positions that accumulate inserted or substituted
// words across the candidate alignments (Algorithm 3's dictionary P),
// ascending.
std::vector<size_t> CandidateGaps(const std::vector<Alignment>& alignments) {
  std::vector<size_t> candidates;
  for (const Alignment& a : alignments) {
    size_t x = 0;
    for (const AlignOp& op : a.ops) {
      switch (op.type) {
        case AlignOpType::kInsert:
        case AlignOpType::kSubstitute:
          candidates.push_back(x);
          break;
        case AlignOpType::kMatch:
        case AlignOpType::kDelete:
          ++x;
          break;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace

void FineClustering::DetectSlots(Template& tmpl,
                                 const std::vector<Alignment>& alignments,
                                 const CostModel& cost_model) const {
  if (options_.use_naive_costing) {
    DetectSlotsNaive(tmpl, alignments, cost_model, nullptr);
  } else {
    DetectSlotsIncremental(tmpl, alignments, cost_model, nullptr, nullptr);
  }
}

void FineClustering::DetectSlotsNaive(Template& tmpl,
                                      const std::vector<Alignment>& alignments,
                                      const CostModel& cost_model,
                                      FineStageStats* stats) const {
  const std::vector<size_t> candidates = CandidateGaps(alignments);
  if (stats != nullptr) stats->slot_candidates_evaluated += candidates.size();

  auto data_cost = [&]() {
    double cost = 0.0;
    for (const Alignment& a : alignments) {
      cost += EncodeDocumentWithAlignment(tmpl, a, cost_model).base_cost;
    }
    return cost;
  };
  auto model_cost = [&]() {
    return cost_model.TemplateCost(tmpl.length(), tmpl.num_slots());
  };

  double current = data_cost() + model_cost();
  for (size_t gap : candidates) {
    tmpl.SetSlotAtGap(gap, true);
    double with_slot = data_cost() + model_cost();
    if (with_slot < current) {
      current = with_slot;
    } else {
      tmpl.SetSlotAtGap(gap, false);
    }
  }
}

void FineClustering::DetectSlotsIncremental(
    Template& tmpl, const std::vector<Alignment>& alignments,
    const CostModel& cost_model, FineStageStats* stats,
    std::vector<double>* final_base_costs) const {
  // One O(length) walk per alignment captures everything the cost of any
  // slot mask depends on; every probe below is pure integer bookkeeping
  // plus one AlignmentCostBase call per document (see slot_analysis.h
  // and DESIGN.md §10 for the algebra and its exactness argument).
  std::vector<GapCostProfile> profiles;
  profiles.reserve(alignments.size());
  for (const Alignment& a : alignments) {
    profiles.push_back(BuildGapCostProfile(a));
  }
  const std::vector<size_t> candidates = CandidateGaps(alignments);
  if (stats != nullptr) stats->slot_candidates_evaluated += candidates.size();

  std::vector<size_t> enabled = tmpl.SlotGaps();
  // Matches the naive path's accumulation exactly: per-document bases
  // summed from zero in document order, then the model cost added.
  auto total_cost = [&](const std::vector<size_t>& slot_gaps) {
    double data = 0.0;
    for (const GapCostProfile& p : profiles) {
      data += cost_model.AlignmentCostBase(SummaryForSlotMask(p, slot_gaps));
    }
    return data + cost_model.TemplateCost(tmpl.length(), slot_gaps.size());
  };

  double current = total_cost(enabled);
  std::vector<size_t> trial;
  for (size_t gap : candidates) {
    trial = enabled;
    trial.insert(std::lower_bound(trial.begin(), trial.end(), gap), gap);
    const double with_slot = total_cost(trial);
    if (with_slot < current) {
      current = with_slot;
      enabled.swap(trial);
      tmpl.SetSlotAtGap(gap, true);
    }
  }
  if (final_base_costs != nullptr) {
    final_base_costs->clear();
    final_base_costs->reserve(profiles.size());
    for (const GapCostProfile& p : profiles) {
      final_base_costs->push_back(
          cost_model.AlignmentCostBase(SummaryForSlotMask(p, enabled)));
    }
  }
}

FineResult FineClustering::RunOnCluster(
    const Corpus& corpus, const std::vector<DocId>& doc_ids,
    const CostModel& cm,
    const std::vector<std::vector<PhraseHash>>* doc_top_phrases) const {
  FineResult result;
  const size_t num_docs = doc_ids.size();
  if (num_docs == 0) return result;

  // Phrase -> member documents (cluster order), for neighbor seeding.
  std::unordered_map<PhraseHash, std::vector<DocId>> phrase_to_docs;
  if (doc_top_phrases != nullptr) {
    for (DocId d : doc_ids) {
      for (PhraseHash p : (*doc_top_phrases)[d]) {
        phrase_to_docs[p].push_back(d);
      }
    }
  }

  // Cost of the cluster with zero templates.
  double all_unencoded = 0.0;
  for (DocId id : doc_ids) {
    all_unencoded += cm.UnencodedDocCost(corpus.doc(id).length());
  }
  result.cost_before =
      TotalCost(cm, num_docs, {}, {}, 0, all_unencoded);

  // Documents are processed in cluster order; claimed marks documents
  // already owned by a template or rejected as noise (indexed by the
  // document's position within the cluster, so memory stays O(cluster)).
  std::unordered_map<DocId, uint32_t> local_index;
  local_index.reserve(doc_ids.size());
  for (size_t i = 0; i < doc_ids.size(); ++i) {
    local_index.emplace(doc_ids[i], static_cast<uint32_t>(i));
  }
  std::vector<char> claimed(doc_ids.size(), 0);
  auto is_claimed = [&](DocId d) { return claimed[local_index.at(d)] != 0; };
  std::vector<std::pair<size_t, size_t>> shapes;   // accepted (len, slots)
  std::vector<double> encoded_base;                // per-template Σ base
  size_t num_encoded = 0;
  // Undecided documents are carried as unencoded in every total so that
  // successive totals stay comparable; as documents are claimed by a
  // template or rejected as noise, their cost moves between the pool and
  // the other terms.
  double pending_token_cost = all_unencoded;
  double noise_token_cost = 0.0;
  double best_total = result.cost_before;

  for (size_t cursor = 0; cursor < doc_ids.size(); ++cursor) {
    const DocId seed = doc_ids[cursor];
    if (claimed[cursor]) continue;
    const std::vector<TokenId>& seed_tokens = corpus.doc(seed).tokens;

    // --- Candidate Alignment (§IV-B1) ---
    // The scan pool is either every unclaimed document after the seed,
    // or — when the coarse stage's top phrases are available — only the
    // seed's phrase-sharing neighbors (see RunOnCluster's doc comment).
    std::vector<DocId> pool;
    if (doc_top_phrases != nullptr) {
      std::unordered_set<DocId> neighbor_set;
      for (PhraseHash p : (*doc_top_phrases)[seed]) {
        auto it = phrase_to_docs.find(p);
        if (it == phrase_to_docs.end()) continue;
        for (DocId d : it->second) {
          if (d != seed && !is_claimed(d)) neighbor_set.insert(d);
        }
      }
      // determinism: unordered gather, sorted before use on the next line.
      pool.assign(neighbor_set.begin(), neighbor_set.end());
      std::sort(pool.begin(), pool.end());
    } else {
      for (size_t i = cursor + 1; i < doc_ids.size(); ++i) {
        if (!claimed[i]) pool.push_back(doc_ids[i]);
      }
    }

    std::vector<DocId> member_ids{seed};
    std::vector<std::vector<TokenId>> member_docs{seed_tokens};
    std::unique_ptr<MsaAligner> graph;
    switch (options_.msa_backend) {
      case MsaBackend::kPoa:
        graph = std::make_unique<PoaGraph>(seed_tokens, options_.scoring);
        break;
      case MsaBackend::kProfile:
        graph = std::make_unique<ProfileMsa>(seed_tokens, options_.scoring);
        break;
    }
    // The seed-vs-pool probes are independent, so the conditional costs
    // can be computed across scan_threads workers; each probe writes its
    // own pre-sized slot and the membership decisions (and POA fusion)
    // happen sequentially afterward in pool order, so the result is
    // byte-identical for any thread count.
    Template seed_template(seed_tokens);
    std::vector<double> conditional(pool.size(), 0.0);
    ThreadPool::ParallelFor(options_.scan_threads, pool.size(), [&](size_t i) {
      const std::vector<TokenId>& tokens = corpus.doc(pool[i]).tokens;
      DocEncoding enc = EncodeDocument(seed_template, tokens, cm);
      conditional[i] = cm.EncodedDocCost(1, enc.summary);
    });
    result.stats.alignments_computed += pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      const DocId d = pool[i];
      const std::vector<TokenId>& tokens = corpus.doc(d).tokens;
      if (conditional[i] < cm.UnencodedDocCost(tokens.size())) {
        member_ids.push_back(d);
        member_docs.push_back(tokens);
        graph->AddSequence(tokens);
      }
    }

    // Claim the candidate set and move its cost out of the pending pool.
    double member_unencoded = 0.0;
    for (DocId d : member_ids) {
      member_unencoded += cm.UnencodedDocCost(corpus.doc(d).length());
      claimed[local_index.at(d)] = 1;
    }
    pending_token_cost -= member_unencoded;

    // Rejection keeps the total unchanged: the members' unencoded cost
    // simply moves from the pending pool to the noise term.
    auto reject_as_noise = [&]() {
      for (DocId d : member_ids) result.noise.push_back(d);
      noise_token_cost += member_unencoded;
    };

    if (member_ids.size() < options_.min_template_support) {
      reject_as_noise();
      continue;
    }

    // --- Consensus Search (Algorithm 2) + Slot Detection (Algorithm 3) ---
    // The winning probe already aligned every member and detected slots;
    // SearchConsensus hands all of it back, so nothing is recomputed.
    ConsensusChoice choice =
        SearchConsensus(*graph, member_docs, cm, &result.stats);
    if (choice.consensus.empty()) {
      reject_as_noise();
      continue;
    }
    Template tmpl = std::move(choice.tmpl);

    std::vector<DocEncoding> encodings;
    double base_sum = 0.0;
    encodings.reserve(member_docs.size());
    for (const Alignment& a : choice.alignments) {
      encodings.push_back(EncodeDocumentWithAlignment(tmpl, a, cm));
      base_sum += encodings.back().base_cost;
    }

    // --- MDL acceptance (Algorithm 4) ---
    std::vector<std::pair<size_t, size_t>> new_shapes = shapes;
    new_shapes.emplace_back(tmpl.length(), tmpl.num_slots());
    std::vector<double> new_encoded = encoded_base;
    new_encoded.push_back(base_sum);
    const double candidate_total =
        TotalCost(cm, num_docs, new_shapes, new_encoded,
                  num_encoded + member_ids.size(),
                  noise_token_cost + pending_token_cost);

    if (candidate_total < best_total) {
      best_total = candidate_total;
      shapes = std::move(new_shapes);
      encoded_base = std::move(new_encoded);
      num_encoded += member_ids.size();
      TemplateCluster cluster;
      cluster.tmpl = std::move(tmpl);
      cluster.members = std::move(member_ids);
      cluster.encodings = std::move(encodings);
      result.templates.push_back(std::move(cluster));
    } else {
      reject_as_noise();
    }
  }

  result.cost_after = best_total;
  // Canonical emission order: rejected documents accumulate in seed-scan
  // order, which depends on how earlier templates carved up the cluster;
  // sorting makes the noise list (and anything downstream that prints
  // it) independent of that history.
  std::sort(result.noise.begin(), result.noise.end());
  INFOSHIELD_AUDIT_INVARIANTS(ValidateFineResult(result, corpus, doc_ids, &cm));
  return result;
}

Status ValidateTemplateCluster(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const CostModel* cost_model) {
  INFOSHIELD_RETURN_IF_ERROR(cluster.tmpl.ValidateInvariants());
  audit::Auditor a("TemplateCluster");
  a.Expect(cluster.encodings.size() == cluster.members.size(),
           StrFormat("%zu encodings for %zu members",
                     cluster.encodings.size(), cluster.members.size()));
  std::unordered_set<DocId> seen;
  for (DocId d : cluster.members) {
    a.Expect(d < corpus.size(),
             StrFormat("member %u outside the %zu-document corpus", d,
                       corpus.size()));
    a.Expect(seen.insert(d).second, StrFormat("member %u listed twice", d));
  }
  INFOSHIELD_RETURN_IF_ERROR(a.Finish());
  for (size_t i = 0; i < cluster.members.size(); ++i) {
    INFOSHIELD_RETURN_IF_ERROR(
        ValidateDocEncoding(cluster.tmpl, corpus.doc(cluster.members[i]).tokens,
                            cluster.encodings[i], cost_model));
  }
  return Status::Ok();
}

Status ValidateFineResult(const FineResult& result, const Corpus& corpus,
                          const std::vector<DocId>& cluster_docs,
                          const CostModel* cost_model) {
  for (const TemplateCluster& tc : result.templates) {
    INFOSHIELD_RETURN_IF_ERROR(
        ValidateTemplateCluster(tc, corpus, cost_model));
  }
  audit::Auditor a("FineResult");
  std::unordered_set<DocId> assigned;
  for (const TemplateCluster& tc : result.templates) {
    for (DocId d : tc.members) {
      a.Expect(assigned.insert(d).second,
               StrFormat("document %u claimed by two templates", d));
    }
  }
  for (DocId d : result.noise) {
    a.Expect(assigned.insert(d).second,
             StrFormat("noise document %u also claimed by a template", d));
  }
  std::unordered_set<DocId> expected(cluster_docs.begin(), cluster_docs.end());
  a.Expect(assigned == expected,
           StrFormat("templates + noise cover %zu documents, cluster has "
                     "%zu",
                     assigned.size(), expected.size()));
  a.Expect(std::isfinite(result.cost_before) && result.cost_before >= 0.0,
           "cost_before is negative or non-finite");
  a.Expect(std::isfinite(result.cost_after) && result.cost_after >= 0.0,
           "cost_after is negative or non-finite");
  a.Expect(result.cost_after <= result.cost_before,
           "accepted model costs more than the empty model");
  return a.Finish();
}

}  // namespace infoshield
