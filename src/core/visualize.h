// Cluster/template visualization (paper Fig. 1-right, Tables IV, IX–XI).
//
// Renders a template and its member documents with the paper's color
// legend: constants plain, slots/slot fills red, insertions green,
// deletions blue (shown as the removed template token in brackets),
// substitutions yellow. Two back-ends: ANSI (terminal) and HTML (report
// for law-enforcement style visual inspection).

#ifndef INFOSHIELD_CORE_VISUALIZE_H_
#define INFOSHIELD_CORE_VISUALIZE_H_

#include <string>

#include "core/fine_clustering.h"
#include "text/corpus.h"

namespace infoshield {

struct VisualizeOptions {
  // Maximum member documents rendered per template (0 = all).
  size_t max_docs = 0;
  // ANSI only: disable colors (plain-text markers remain).
  bool use_color = true;
};

// One template block: the template line followed by one line per member.
std::string RenderTemplateAnsi(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const VisualizeOptions& options = {});

// Standalone HTML fragment (a <div class="infoshield-cluster">...).
std::string RenderTemplateHtml(const TemplateCluster& cluster,
                               const Corpus& corpus,
                               const VisualizeOptions& options = {});

// Full HTML document wrapping RenderTemplateHtml for all templates of a
// result, including the style sheet and a summary header.
std::string RenderReportHtml(const std::vector<TemplateCluster>& clusters,
                             const Corpus& corpus,
                             const VisualizeOptions& options = {});

}  // namespace infoshield

#endif  // INFOSHIELD_CORE_VISUALIZE_H_
