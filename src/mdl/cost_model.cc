#include "mdl/cost_model.h"

#include "util/logging.h"

namespace infoshield {

CostModel::CostModel(double lg_vocab) : lg_vocab_(lg_vocab) {
  CHECK_GT(lg_vocab, 0.0);
}

CostModel CostModel::ForVocabulary(const Vocabulary& vocab) {
  return CostModel(vocab.BitsPerWord());
}

double CostModel::UnencodedDocCost(size_t length) const {
  return static_cast<double>(length) * lg_vocab_;
}

double CostModel::TemplateCost(size_t length, size_t num_slots) const {
  return UniversalCodeLength(length) +
         static_cast<double>(length) * lg_vocab_ +
         (1.0 + static_cast<double>(num_slots)) * Log2Bits(length);
}

double CostModel::ModelCost(
    const std::vector<std::pair<size_t, size_t>>& template_shapes) const {
  double cost = UniversalCodeLength(template_shapes.size());
  for (const auto& [length, slots] : template_shapes) {
    cost += TemplateCost(length, slots);
  }
  return cost;
}

double CostModel::SlotCost(size_t word_count) const {
  double cost = 1.0;  // empty/non-empty flag
  if (word_count > 0) {
    cost += UniversalCodeLength(word_count) +
            static_cast<double>(word_count) * lg_vocab_;
  }
  return cost;
}

double CostModel::AlignmentCostBase(const EncodingSummary& s) const {
  const double lg_len = Log2Bits(s.alignment_length);
  double cost = UniversalCodeLength(s.alignment_length) +
                static_cast<double>(s.alignment_length);
  cost += static_cast<double>(s.unmatched) * (lg_len + 2.0);
  cost += static_cast<double>(s.inserted_or_substituted) * lg_vocab_;
  for (size_t w : s.slot_word_counts) cost += SlotCost(w);
  return cost;
}

double CostModel::EncodedDocCost(size_t num_templates,
                                 const EncodingSummary& s) const {
  return Log2Bits(num_templates) + AlignmentCostBase(s);
}

double RelativeLength(double cost_after, double cost_before) {
  if (cost_before <= 0.0) return 1.0;
  return cost_after / cost_before;
}

double RelativeLengthLowerBound(size_t num_templates, size_t num_documents,
                                double lg_vocab) {
  CHECK_GT(num_documents, 0u);
  CHECK_GT(lg_vocab, 0.0);
  return static_cast<double>(num_templates) /
             static_cast<double>(num_documents) +
         1.0 / lg_vocab;
}

}  // namespace infoshield
