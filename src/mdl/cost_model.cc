#include "mdl/cost_model.h"

#include <cmath>

#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

CostModel::CostModel(double lg_vocab) : lg_vocab_(lg_vocab) {
  CHECK_GT(lg_vocab, 0.0);
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

CostModel CostModel::ForVocabulary(const Vocabulary& vocab) {
  return CostModel(vocab.BitsPerWord());
}

double CostModel::UnencodedDocCost(size_t length) const {
  return static_cast<double>(length) * lg_vocab_;
}

double CostModel::TemplateCost(size_t length, size_t num_slots) const {
  return UniversalCodeLength(length) +
         static_cast<double>(length) * lg_vocab_ +
         (1.0 + static_cast<double>(num_slots)) * Log2Bits(length);
}

double CostModel::ModelCost(
    const std::vector<std::pair<size_t, size_t>>& template_shapes) const {
  double cost = UniversalCodeLength(template_shapes.size());
  for (const auto& [length, slots] : template_shapes) {
    cost += TemplateCost(length, slots);
  }
  return cost;
}

double CostModel::SlotCost(size_t word_count) const {
  double cost = 1.0;  // empty/non-empty flag
  if (word_count > 0) {
    cost += UniversalCodeLength(word_count) +
            static_cast<double>(word_count) * lg_vocab_;
  }
  return cost;
}

double CostModel::AlignmentCostBase(const EncodingSummary& s) const {
  const double lg_len = Log2Bits(s.alignment_length);
  double cost = UniversalCodeLength(s.alignment_length) +
                static_cast<double>(s.alignment_length);
  cost += static_cast<double>(s.unmatched) * (lg_len + 2.0);
  cost += static_cast<double>(s.inserted_or_substituted) * lg_vocab_;
  for (size_t w : s.slot_word_counts) cost += SlotCost(w);
  return cost;
}

double CostModel::EncodedDocCost(size_t num_templates,
                                 const EncodingSummary& s) const {
  return Log2Bits(num_templates) + AlignmentCostBase(s);
}

Status CostModel::ValidateInvariants() const {
  audit::Auditor a("CostModel");
  a.Expect(std::isfinite(lg_vocab_) && lg_vocab_ > 0.0,
           "lg_vocab is non-finite or non-positive");

  auto finite_nonneg = [&a](double bits, const char* what) {
    a.Expect(std::isfinite(bits) && bits >= 0.0,
             StrFormat("%s is negative or non-finite", what));
  };
  const size_t kLengths[] = {0, 1, 2, 5, 32, 1000, 100000};
  double prev_unencoded = 0.0;
  for (size_t l : kLengths) {
    finite_nonneg(UnencodedDocCost(l), "UnencodedDocCost");
    a.Expect(UnencodedDocCost(l) >= prev_unencoded,
             StrFormat("UnencodedDocCost not monotone at l=%zu", l));
    prev_unencoded = UnencodedDocCost(l);
    for (size_t slots : {size_t{0}, size_t{1}, l}) {
      finite_nonneg(TemplateCost(l, slots), "TemplateCost");
    }
  }
  a.Expect(SlotCost(0) == 1.0, "S(0) != 1 bit");
  double prev_slot = 0.0;
  for (size_t w : {size_t{0}, size_t{1}, size_t{3}, size_t{50}}) {
    finite_nonneg(SlotCost(w), "SlotCost");
    a.Expect(SlotCost(w) >= prev_slot,
             StrFormat("SlotCost not monotone at w=%zu", w));
    prev_slot = SlotCost(w);
  }
  for (size_t l : kLengths) {
    EncodingSummary s;
    s.alignment_length = l;
    s.unmatched = l / 2;
    s.inserted_or_substituted = l / 4;
    s.slot_word_counts = {0, 2};
    finite_nonneg(AlignmentCostBase(s), "AlignmentCostBase");
    a.Expect(EncodedDocCost(3, s) >= AlignmentCostBase(s),
             "EncodedDocCost below AlignmentCostBase");
  }
  return a.Finish();
}

Status ValidateEncodingSummary(const EncodingSummary& s) {
  audit::Auditor a("EncodingSummary");
  a.Expect(s.unmatched <= s.alignment_length,
           StrFormat("unmatched %zu exceeds alignment length %zu",
                     s.unmatched, s.alignment_length));
  a.Expect(s.inserted_or_substituted <= s.unmatched,
           StrFormat("inserted_or_substituted %zu exceeds unmatched %zu",
                     s.inserted_or_substituted, s.unmatched));
  return a.Finish();
}

double RelativeLength(double cost_after, double cost_before) {
  if (cost_before <= 0.0) return 1.0;
  return cost_after / cost_before;
}

double RelativeLengthLowerBound(size_t num_templates, size_t num_documents,
                                double lg_vocab) {
  CHECK_GT(num_documents, 0u);
  CHECK_GT(lg_vocab, 0.0);
  return static_cast<double>(num_templates) /
             static_cast<double>(num_documents) +
         1.0 / lg_vocab;
}

}  // namespace infoshield
