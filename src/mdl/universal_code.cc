#include "mdl/universal_code.h"

#include <cmath>

#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

double UniversalCodeLength(uint64_t n) {
  if (n <= 1) return 1.0;
  return 2.0 * std::log2(static_cast<double>(n)) + 1.0;
}

double Log2Bits(uint64_t n) {
  if (n <= 1) return 0.0;
  return std::log2(static_cast<double>(n));
}

namespace {

// floor(lg m) for m >= 1.
inline size_t FloorLog2(uint64_t m) {
  size_t k = 0;
  while (m >>= 1) ++k;
  return k;
}

}  // namespace

Status AppendUniversalBits(uint64_t n, std::vector<uint8_t>* bits) {
  if (n == UINT64_MAX) {
    return Status::OutOfRange(
        "AppendUniversalBits: n + 1 overflows the 64-bit value domain");
  }
  const uint64_t m = n + 1;  // gamma codes positive integers; shift 0 in
  const size_t k = FloorLog2(m);
  // k zeros, then the k+1 significant bits of m (MSB first, always 1).
  bits->insert(bits->end(), k, 0);
  for (size_t b = k + 1; b-- > 0;) {
    bits->push_back(static_cast<uint8_t>((m >> b) & 1));
  }
  return Status::Ok();
}

Result<uint64_t> DecodeUniversalBits(const std::vector<uint8_t>& bits,
                                     size_t* pos) {
  CHECK(pos != nullptr);
  size_t i = *pos;
  if (i > bits.size()) {
    return Status::InvalidArgument(
        "DecodeUniversalBits: position past end of stream");
  }
  size_t k = 0;
  while (i < bits.size() && bits[i] == 0) {
    ++k;
    ++i;
  }
  if (i + k + 1 > bits.size()) {
    return Status::InvalidArgument(StrFormat(
        "DecodeUniversalBits: truncated codeword at bit %zu", *pos));
  }
  if (k > 63) {
    return Status::InvalidArgument(StrFormat(
        "DecodeUniversalBits: unary prefix of %zu zeros exceeds the "
        "64-bit value domain",
        k));
  }
  uint64_t m = 0;
  for (size_t b = 0; b < k + 1; ++b) {
    m = (m << 1) | (bits[i + b] & 1);
  }
  // The first significant bit is the 1 that terminated the unary run.
  CHECK(m >> k == 1);
  *pos = i + k + 1;
  return m - 1;
}

size_t UniversalBitsLength(uint64_t n) {
  CHECK(n < UINT64_MAX) << "UniversalBitsLength: n + 1 overflows";
  return 2 * FloorLog2(n + 1) + 1;
}

Status AuditUniversalCode() {
  audit::Auditor a("UniversalCode");
  a.Expect(UniversalCodeLength(0) == 1.0, "<0> != 1 bit");
  a.Expect(UniversalCodeLength(1) == 1.0, "<1> != 1 bit");
  a.Expect(Log2Bits(0) == 0.0, "lg(0) != 0");
  a.Expect(Log2Bits(1) == 0.0, "lg(1) != 0");

  double prev_ucl = UniversalCodeLength(0);
  double prev_lg = Log2Bits(0);
  for (uint64_t n = 1; n <= (uint64_t{1} << 40); n *= 3) {
    const double ucl = UniversalCodeLength(n);
    const double lg = Log2Bits(n);
    const double expected_ucl =
        n <= 1 ? 1.0 : 2.0 * std::log2(static_cast<double>(n)) + 1.0;
    const double expected_lg =
        n <= 1 ? 0.0 : std::log2(static_cast<double>(n));
    a.Expect(std::isfinite(ucl) && ucl >= 0.0,
             StrFormat("<%llu> is negative or non-finite",
                       static_cast<unsigned long long>(n)));
    a.Expect(std::abs(ucl - expected_ucl) <= 1e-9,
             StrFormat("<%llu> deviates from 2*lg n + 1",
                       static_cast<unsigned long long>(n)));
    a.Expect(std::abs(lg - expected_lg) <= 1e-9,
             StrFormat("lg(%llu) deviates from log2",
                       static_cast<unsigned long long>(n)));
    a.Expect(ucl >= prev_ucl,
             StrFormat("<n> not monotone at n=%llu",
                       static_cast<unsigned long long>(n)));
    a.Expect(lg >= prev_lg,
             StrFormat("lg(n) not monotone at n=%llu",
                       static_cast<unsigned long long>(n)));
    prev_ucl = ucl;
    prev_lg = lg;
  }
  return a.Finish();
}

}  // namespace infoshield
