#include "mdl/universal_code.h"

#include <cmath>

namespace infoshield {

double UniversalCodeLength(uint64_t n) {
  if (n <= 1) return 1.0;
  return 2.0 * std::log2(static_cast<double>(n)) + 1.0;
}

double Log2Bits(uint64_t n) {
  if (n <= 1) return 0.0;
  return std::log2(static_cast<double>(n));
}

}  // namespace infoshield
