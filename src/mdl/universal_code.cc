#include "mdl/universal_code.h"

#include <cmath>

#include "util/audit.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

double UniversalCodeLength(uint64_t n) {
  if (n <= 1) return 1.0;
  return 2.0 * std::log2(static_cast<double>(n)) + 1.0;
}

double Log2Bits(uint64_t n) {
  if (n <= 1) return 0.0;
  return std::log2(static_cast<double>(n));
}

Status AuditUniversalCode() {
  audit::Auditor a("UniversalCode");
  a.Expect(UniversalCodeLength(0) == 1.0, "<0> != 1 bit");
  a.Expect(UniversalCodeLength(1) == 1.0, "<1> != 1 bit");
  a.Expect(Log2Bits(0) == 0.0, "lg(0) != 0");
  a.Expect(Log2Bits(1) == 0.0, "lg(1) != 0");

  double prev_ucl = UniversalCodeLength(0);
  double prev_lg = Log2Bits(0);
  for (uint64_t n = 1; n <= (uint64_t{1} << 40); n *= 3) {
    const double ucl = UniversalCodeLength(n);
    const double lg = Log2Bits(n);
    const double expected_ucl =
        n <= 1 ? 1.0 : 2.0 * std::log2(static_cast<double>(n)) + 1.0;
    const double expected_lg =
        n <= 1 ? 0.0 : std::log2(static_cast<double>(n));
    a.Expect(std::isfinite(ucl) && ucl >= 0.0,
             StrFormat("<%llu> is negative or non-finite",
                       static_cast<unsigned long long>(n)));
    a.Expect(std::abs(ucl - expected_ucl) <= 1e-9,
             StrFormat("<%llu> deviates from 2*lg n + 1",
                       static_cast<unsigned long long>(n)));
    a.Expect(std::abs(lg - expected_lg) <= 1e-9,
             StrFormat("lg(%llu) deviates from log2",
                       static_cast<unsigned long long>(n)));
    a.Expect(ucl >= prev_ucl,
             StrFormat("<n> not monotone at n=%llu",
                       static_cast<unsigned long long>(n)));
    a.Expect(lg >= prev_lg,
             StrFormat("lg(n) not monotone at n=%llu",
                       static_cast<unsigned long long>(n)));
    prev_ucl = ucl;
    prev_lg = lg;
  }
  return a.Finish();
}

}  // namespace infoshield
