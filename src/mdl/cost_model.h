// The InfoShield encoding cost model (paper §III-B).
//
// Total cost of a corpus under a template set M (Definition 1):
//
//   C = C(M) + C(D|M)
//
// Model cost (Definition 2 / Eq. 2):
//
//   C(M) = <t> + sum_i [ <l_i> + l_i * lgV + (1 + s_i) * lg l_i ]
//
// Data cost (Definition 3 / Eq. 3, expanded with the bullet list):
//   * 1 bit per document for the template yes/no flag (the leading N term)
//   * unencoded document d:  l_d * lgV
//   * document d encoded by template T_i:
//       lg t                  template id
//       <l̂_d> + l̂_d          alignment length + 1 matched/unmatched bit
//                             per alignment word
//       e_d * (lg l̂_d + 2)    location + op type (⌈lg 3⌉ = 2 bits) for
//                             each unmatched word
//       u_d * lgV             vocabulary index for each inserted or
//                             substituted word
//       sum_j S(w_{d,j})      slot contents (Eq. 4)
//
//   S(w) = 1 + (<w> + w * lgV  if w > 0 else 0)
//
// Note on the op-type bits: Eq. 3 as printed omits the 2-bit op-type term,
// but the itemized description in §III-B2 includes it ("⌈lg 3⌉ = 2 bits
// for operation type of each unmatched word"); we follow the itemized
// description, which only shifts all template costs uniformly.
//
// The vocabulary itself is not charged (§III-B3): it is identical across
// all candidate template sets and so never affects a comparison.

#ifndef INFOSHIELD_MDL_COST_MODEL_H_
#define INFOSHIELD_MDL_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "mdl/universal_code.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace infoshield {

// Everything the data-cost formula needs to know about one document's
// alignment against a template (after slot absorption).
struct EncodingSummary {
  // l̂_d: number of alignment columns.
  size_t alignment_length = 0;
  // e_d: unmatched columns (insertions + deletions + substitutions).
  size_t unmatched = 0;
  // u_d: inserted or substituted words (these also pay lgV).
  size_t inserted_or_substituted = 0;
  // w_{d,j}: number of words this document puts in each template slot.
  std::vector<size_t> slot_word_counts;
};

class CostModel {
 public:
  // lg_vocab = lg V; use ForVocabulary for the common case.
  explicit CostModel(double lg_vocab);

  static CostModel ForVocabulary(const Vocabulary& vocab);

  double lg_vocab() const { return lg_vocab_; }

  // l * lgV — cost of a document no template describes. (The 1-bit
  // template flag is charged separately, once per document, by
  // TotalDataCost-style aggregation in the fine stage.)
  double UnencodedDocCost(size_t length) const;

  // Eq. 2 inner term for one template: <l> + l*lgV + (1+s)*lg l.
  double TemplateCost(size_t length, size_t num_slots) const;

  // Eq. 2 for a template set given each template's (length, slots).
  double ModelCost(
      const std::vector<std::pair<size_t, size_t>>& template_shapes) const;

  // S(w) — Eq. 4.
  double SlotCost(size_t word_count) const;

  // Per-document alignment cost, *excluding* the lg t template-id term
  // (which depends on the evolving template count and is added by the
  // caller): <l̂> + l̂ + e*(lg l̂ + 2) + u*lgV + Σ_j S(w_j).
  double AlignmentCostBase(const EncodingSummary& s) const;

  // Full encoded-document cost: lg t + AlignmentCostBase.
  double EncodedDocCost(size_t num_templates, const EncodingSummary& s) const;

  // Deep invariant audit (util/audit.h): probes every cost formula over a
  // grid of shapes and verifies all produced costs are finite and
  // non-negative, with the expected monotonicities (longer documents and
  // more slot words never cost less). Returns OK or an Internal status
  // listing every violation.
  Status ValidateInvariants() const;

 private:
  double lg_vocab_;
};

// Audits the internal consistency of one encoding summary: the unmatched
// count cannot exceed the alignment length, and inserted/substituted
// words are a subset of the unmatched columns.
Status ValidateEncodingSummary(const EncodingSummary& s);

// Relative length (Eq. 7): cost after compression / cost before.
double RelativeLength(double cost_after, double cost_before);

// Lemma 1 lower bound on a cluster's relative length: t/n + 1/lgV.
double RelativeLengthLowerBound(size_t num_templates, size_t num_documents,
                                double lg_vocab);

}  // namespace infoshield

#endif  // INFOSHIELD_MDL_COST_MODEL_H_
