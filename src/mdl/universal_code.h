// Code-length primitives for the MDL cost model.
//
// The paper (Table VI) uses:
//   <n>    ~= 2 lg n + 1 : universal code length for a non-negative integer
//              (Rissanen's log* approximation; we define <0> = <1> = 1 bit)
//   lg(L)  = log2(L)     : code length for an integer in 1..L
// All costs are real-valued bit counts; they are compared, never emitted.

#ifndef INFOSHIELD_MDL_UNIVERSAL_CODE_H_
#define INFOSHIELD_MDL_UNIVERSAL_CODE_H_

#include <cstdint>

namespace infoshield {

// <n> = 2*lg(n) + 1 for n >= 1; 1 bit for n == 0.
double UniversalCodeLength(uint64_t n);

// lg(L) with lg(0) = lg(1) = 0 (choosing among <= 1 alternative is free).
double Log2Bits(uint64_t n);

}  // namespace infoshield

#endif  // INFOSHIELD_MDL_UNIVERSAL_CODE_H_
