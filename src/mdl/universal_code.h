// Code-length primitives for the MDL cost model.
//
// The paper (Table VI) uses:
//   <n>    ~= 2 lg n + 1 : universal code length for a non-negative integer
//              (Rissanen's log* approximation; we define <0> = <1> = 1 bit)
//   lg(L)  = log2(L)     : code length for an integer in 1..L
// All costs are real-valued bit counts; they are compared, never emitted.

#ifndef INFOSHIELD_MDL_UNIVERSAL_CODE_H_
#define INFOSHIELD_MDL_UNIVERSAL_CODE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace infoshield {

// <n> = 2*lg(n) + 1 for n >= 1; 1 bit for n == 0.
double UniversalCodeLength(uint64_t n);

// lg(L) with lg(0) = lg(1) = 0 (choosing among <= 1 alternative is free).
double Log2Bits(uint64_t n);

// --- Bit-level realization of <n> (Elias gamma over n + 1) ---
//
// The cost formulas above are real-valued and never emitted; the codec
// below is the decodable witness that <n> is an honest code length: it is
// prefix-free (concatenated codewords decode unambiguously) and its
// integer codeword length tracks UniversalCodeLength(n) within 2 bits
// (the slack between 2*floor(lg(n+1))+1 and 2*lg(n)+1). Fuzzed
// end-to-end by fuzz/universal_code_fuzz.cc.

// Appends the codeword for n to `bits` (one 0/1 byte per bit).
// OutOfRange for n == UINT64_MAX (n + 1 would overflow the value domain).
[[nodiscard]] Status AppendUniversalBits(uint64_t n,
                                         std::vector<uint8_t>* bits);

// Decodes one codeword starting at *pos, advancing *pos past it.
// InvalidArgument when the stream is truncated or *pos is out of range.
[[nodiscard]] Result<uint64_t> DecodeUniversalBits(
    const std::vector<uint8_t>& bits, size_t* pos);

// Exact integer codeword length AppendUniversalBits produces for n:
// 2*floor(lg(n + 1)) + 1. Precondition (CHECKed): n < UINT64_MAX.
size_t UniversalBitsLength(uint64_t n);

// Deep invariant audit (util/audit.h): probes both primitives over a
// geometric grid of arguments and verifies UniversalCodeLength(n) matches
// the 2·lg n + 1 definition (1 bit for n <= 1), Log2Bits matches lg n
// (0 for n <= 1), and both are finite, non-negative, and monotone
// non-decreasing. Returns OK or an Internal status listing every
// violation.
Status AuditUniversalCode();

}  // namespace infoshield

#endif  // INFOSHIELD_MDL_UNIVERSAL_CODE_H_
