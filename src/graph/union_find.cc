#include "graph/union_find.h"

#include <numeric>

#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t UnionFind::AddElement() {
  const uint32_t id = static_cast<uint32_t>(parent_.size());
  parent_.push_back(id);
  size_.push_back(1);
  ++num_sets_;
  return id;
}

void UnionFind::Reserve(size_t n) {
  parent_.reserve(n);
  size_.reserve(n);
}

uint32_t UnionFind::Find(uint32_t x) {
  CHECK_LT(x, parent_.size());
  while (parent_[x] != x) {
    // A corrupt (out-of-range) parent entry would make the halving read
    // walk off the array as silent UB; fail loudly instead. The grandparent
    // is then in range too: chains only shorten under halving.
    CHECK_LT(parent_[x], parent_.size());
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

uint32_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

Status UnionFind::ValidateInvariants() const {
  audit::Auditor a("UnionFind");
  const size_t n = parent_.size();
  a.Expect(size_.size() == n,
           StrFormat("size_ has %zu entries for %zu elements", size_.size(),
                     n));

  // Resolve every element's root without path compression, marking nodes
  // done as chains terminate so the whole pass is O(n) and a cycle can
  // never loop forever: a parent chain that walks more than n steps
  // without reaching a root must repeat a node.
  std::vector<uint32_t> root(n, 0);
  std::vector<uint8_t> done(n, 0);
  bool structure_ok = true;
  for (uint32_t i = 0; i < n && structure_ok; ++i) {
    if (done[i]) continue;
    std::vector<uint32_t> chain;
    uint32_t x = i;
    while (true) {
      if (!a.Expect(x < n, StrFormat("parent chain of %u leaves range at %u",
                                     i, x))) {
        structure_ok = false;
        break;
      }
      if (done[x]) break;
      if (parent_[x] == x) {
        root[x] = x;
        done[x] = 1;
        break;
      }
      chain.push_back(x);
      x = parent_[x];
      if (!a.Expect(chain.size() <= n,
                    StrFormat("parent chain of %u cycles (no root within "
                              "%zu steps)",
                              i, n))) {
        structure_ok = false;
        break;
      }
    }
    if (!structure_ok) break;
    const uint32_t r = root[x];
    for (uint32_t y : chain) {
      root[y] = r;
      done[y] = 1;
    }
  }
  if (!structure_ok) return a.Finish();

  // Per-root member counts against the stored sizes; roots against
  // num_sets_.
  std::vector<uint32_t> count(n, 0);
  size_t num_roots = 0;
  for (uint32_t i = 0; i < n; ++i) {
    ++count[root[i]];
    if (parent_[i] == i) ++num_roots;
  }
  a.Expect(num_roots == num_sets_,
           StrFormat("num_sets_=%zu but the forest has %zu roots", num_sets_,
                     num_roots));
  if (size_.size() == n) {
    for (uint32_t i = 0; i < n; ++i) {
      if (parent_[i] != i) continue;
      a.Expect(size_[i] == count[i],
               StrFormat("root %u stores size %u but has %u members", i,
                         size_[i], count[i]));
    }
  }
  return a.Finish();
}

}  // namespace infoshield
