// Disjoint-set (union-find) with path halving and union by size.
// Backbone of the coarse stage's connected-component computation.

#ifndef INFOSHIELD_GRAPH_UNION_FIND_H_
#define INFOSHIELD_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace infoshield {

class UnionFind {
 public:
  explicit UnionFind(size_t n);

  // Representative of x's set.
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Size of the set containing x.
  uint32_t SetSize(uint32_t x);

  size_t num_elements() const { return parent_.size(); }
  size_t num_sets() const { return num_sets_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_GRAPH_UNION_FIND_H_
