// Disjoint-set (union-find) with path halving and union by size.
// Backbone of the coarse stage's connected-component computation.
//
// Growable: AddElement appends a fresh singleton set, which is what lets
// the incremental ingestion path (DESIGN.md §15) union new documents'
// edges into the existing doc–phrase graph without rebuilding it. Growth
// makes stale-id bugs far more likely (an id minted against a newer
// generation handed to an older structure), so every entry point
// bounds-checks its argument, and Find additionally validates each
// parent-chain hop in audited builds — a corrupt in-range entry would
// otherwise walk off the array silently.

#ifndef INFOSHIELD_GRAPH_UNION_FIND_H_
#define INFOSHIELD_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace infoshield {

class UnionFind {
 public:
  explicit UnionFind(size_t n);

  // Appends a new element as its own singleton set; returns its id
  // (== the previous num_elements()).
  uint32_t AddElement();

  // Pre-grows internal storage for n total elements.
  void Reserve(size_t n);

  // Representative of x's set. Pre-condition: x < num_elements(). Checked.
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Size of the set containing x.
  uint32_t SetSize(uint32_t x);

  size_t num_elements() const { return parent_.size(); }
  size_t num_sets() const { return num_sets_; }

  // Deep invariant audit (util/audit.h): the parent array is an acyclic
  // forest with in-range entries, every root's stored size equals its
  // actual member count (sizes sum to n), and num_sets matches the root
  // count. Returns OK or an Internal status listing every violation.
  // Does not mutate the structure (no path compression).
  Status ValidateInvariants() const;

 private:
  friend class UnionFindTestPeer;

  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_GRAPH_UNION_FIND_H_
