#include "graph/connected_components.h"

#include <algorithm>
#include <unordered_map>

#include "util/audit.h"

namespace infoshield {

Components ExtractComponents(UnionFind& uf, size_t min_component_size) {
  INFOSHIELD_AUDIT_INVARIANTS(uf.ValidateInvariants());
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_root;
  const size_t n = uf.num_elements();
  for (uint32_t i = 0; i < n; ++i) {
    by_root[uf.Find(i)].push_back(i);
  }
  Components out;
  out.groups.reserve(by_root.size());
  // determinism: group order is canonicalized by the sort below; each
  // member list is already ascending (inserted in id order).
  for (auto& [root, members] : by_root) {
    if (members.size() < min_component_size) continue;
    out.groups.push_back(std::move(members));
  }
  std::sort(out.groups.begin(), out.groups.end(),
            [](const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
              return a.front() < b.front();
            });
  return out;
}

}  // namespace infoshield
