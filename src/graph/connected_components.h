// Grouping elements into connected components from a UnionFind, with
// deterministic ordering (components by smallest member; members by id).

#ifndef INFOSHIELD_GRAPH_CONNECTED_COMPONENTS_H_
#define INFOSHIELD_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/union_find.h"

namespace infoshield {

struct Components {
  // Each component is a sorted list of element ids; components are ordered
  // by their smallest element.
  std::vector<std::vector<uint32_t>> groups;

  size_t size() const { return groups.size(); }
};

// Extracts all components of `uf`. Components with fewer than
// `min_component_size` members are dropped (paper: singleton documents are
// eliminated by InfoShield-Coarse).
Components ExtractComponents(UnionFind& uf, size_t min_component_size);

}  // namespace infoshield

#endif  // INFOSHIELD_GRAPH_CONNECTED_COMPONENTS_H_
