// Evaluation metrics (paper §V-A5): binary precision / recall / F1 and
// the Adjusted Rand Index (Hubert & Arabie 1985) for cluster labels.

#ifndef INFOSHIELD_EVAL_METRICS_H_
#define INFOSHIELD_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace infoshield {

struct BinaryMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double accuracy() const;
};

// predicted[i] / actual[i]: whether document i is predicted/actually
// positive (suspicious). Sizes must match.
BinaryMetrics ComputeBinaryMetrics(const std::vector<bool>& predicted,
                                   const std::vector<bool>& actual);

// Adjusted Rand Index between two labelings of the same items.
//
// Label -1 is the conventional "noise / no cluster" marker (the paper
// labels all legitimate users -1 because "their tweets are different
// enough that they shouldn't be clustered together"): each -1 item is
// treated as its own singleton cluster on BOTH sides before computing
// ARI. Returns a value in [-1, 1]; 1 = identical partitions.
double AdjustedRandIndex(const std::vector<int64_t>& labels_a,
                         const std::vector<int64_t>& labels_b);

// Information-theoretic clustering agreement (Rosenberg & Hirschberg
// 2007; Strehl & Ghosh 2002). Same -1-as-singleton convention as ARI.
struct ClusteringAgreement {
  // H(truth) - H(truth | predicted), normalized: 1 = every predicted
  // cluster contains members of a single true class.
  double homogeneity = 1.0;
  // Symmetric counterpart: 1 = all members of each true class land in
  // the same predicted cluster.
  double completeness = 1.0;
  // Harmonic mean of the two.
  double v_measure = 1.0;
  // Mutual information normalized by sqrt(H(a) * H(b)).
  double nmi = 1.0;
};

// truth first, prediction second (homogeneity/completeness are
// asymmetric).
ClusteringAgreement ComputeClusteringAgreement(
    const std::vector<int64_t>& truth, const std::vector<int64_t>& predicted);

}  // namespace infoshield

#endif  // INFOSHIELD_EVAL_METRICS_H_
