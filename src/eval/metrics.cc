#include "eval/metrics.h"

#include <cmath>
#include <map>
#include <utility>

#include "util/logging.h"

namespace infoshield {

double BinaryMetrics::precision() const {
  size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryMetrics::recall() const {
  size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryMetrics::f1() const {
  double p = precision();
  double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryMetrics::accuracy() const {
  size_t total =
      true_positives + false_positives + true_negatives + false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

BinaryMetrics ComputeBinaryMetrics(const std::vector<bool>& predicted,
                                   const std::vector<bool>& actual) {
  CHECK_EQ(predicted.size(), actual.size());
  BinaryMetrics m;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && actual[i]) ++m.true_positives;
    else if (predicted[i] && !actual[i]) ++m.false_positives;
    else if (!predicted[i] && actual[i]) ++m.false_negatives;
    else ++m.true_negatives;
  }
  return m;
}

namespace {

// Expands -1 labels into unique singleton labels.
std::vector<int64_t> ExpandNoise(const std::vector<int64_t>& labels) {
  std::vector<int64_t> out = labels;
  int64_t next = -2;  // descending ids can never collide with real labels
  for (int64_t& l : out) {
    if (l == -1) l = next--;
  }
  return out;
}

double Comb2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double AdjustedRandIndex(const std::vector<int64_t>& labels_a,
                         const std::vector<int64_t>& labels_b) {
  CHECK_EQ(labels_a.size(), labels_b.size());
  const size_t n = labels_a.size();
  if (n == 0) return 1.0;

  std::vector<int64_t> a = ExpandNoise(labels_a);
  std::vector<int64_t> b = ExpandNoise(labels_b);

  std::map<std::pair<int64_t, int64_t>, size_t> contingency;
  std::map<int64_t, size_t> count_a;
  std::map<int64_t, size_t> count_b;
  for (size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++count_a[a[i]];
    ++count_b[b[i]];
  }

  double sum_ij = 0.0;
  for (const auto& [key, c] : contingency) sum_ij += Comb2(c);
  double sum_a = 0.0;
  for (const auto& [key, c] : count_a) sum_a += Comb2(c);
  double sum_b = 0.0;
  for (const auto& [key, c] : count_b) sum_b += Comb2(c);

  const double total = Comb2(static_cast<double>(n));
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions trivially identical
  return (sum_ij - expected) / denom;
}

ClusteringAgreement ComputeClusteringAgreement(
    const std::vector<int64_t>& truth,
    const std::vector<int64_t>& predicted) {
  CHECK_EQ(truth.size(), predicted.size());
  ClusteringAgreement out;
  const size_t n = truth.size();
  if (n == 0) return out;

  std::vector<int64_t> a = ExpandNoise(truth);
  std::vector<int64_t> b = ExpandNoise(predicted);

  std::map<std::pair<int64_t, int64_t>, size_t> joint;
  std::map<int64_t, size_t> count_a;
  std::map<int64_t, size_t> count_b;
  for (size_t i = 0; i < n; ++i) {
    ++joint[{a[i], b[i]}];
    ++count_a[a[i]];
    ++count_b[b[i]];
  }

  const double dn = static_cast<double>(n);
  auto entropy = [dn](const std::map<int64_t, size_t>& counts) {
    double h = 0.0;
    for (const auto& [label, c] : counts) {
      const double p = static_cast<double>(c) / dn;
      h -= p * std::log(p);
    }
    return h;
  };
  const double h_a = entropy(count_a);
  const double h_b = entropy(count_b);

  double mi = 0.0;
  for (const auto& [pair, c] : joint) {
    const double p_joint = static_cast<double>(c) / dn;
    const double p_a = static_cast<double>(count_a[pair.first]) / dn;
    const double p_b = static_cast<double>(count_b[pair.second]) / dn;
    mi += p_joint * std::log(p_joint / (p_a * p_b));
  }
  mi = std::max(mi, 0.0);  // clamp numeric noise

  out.homogeneity = h_a > 0.0 ? mi / h_a : 1.0;
  out.completeness = h_b > 0.0 ? mi / h_b : 1.0;
  out.v_measure =
      (out.homogeneity + out.completeness) > 0.0
          ? 2.0 * out.homogeneity * out.completeness /
                (out.homogeneity + out.completeness)
          : 0.0;
  out.nmi = (h_a > 0.0 && h_b > 0.0) ? mi / std::sqrt(h_a * h_b) : 1.0;
  return out;
}

}  // namespace infoshield
