// Word2Vec: skip-gram with negative sampling (Mikolov et al. 2013),
// trained from scratch — the paper's Word2Vec-cl baseline embeds ads with
// such a model and averages word vectors per document.

#ifndef INFOSHIELD_BASELINES_WORD2VEC_H_
#define INFOSHIELD_BASELINES_WORD2VEC_H_

#include "baselines/embedding.h"
#include "text/corpus.h"
#include "text/vocabulary.h"

namespace infoshield {

struct Word2VecOptions {
  size_t dim = 64;
  size_t window = 5;
  size_t negative_samples = 5;
  double learning_rate = 0.025;
  size_t epochs = 3;
};

class Word2Vec : public DocumentEmbedder {
 public:
  Word2Vec() = default;
  explicit Word2Vec(Word2VecOptions options) : options_(options) {}

  void Train(const Corpus& corpus, uint64_t seed) override;

  // Mean of the document tokens' input vectors.
  Vec Embed(const Document& doc) const override;

  size_t dim() const override { return options_.dim; }

  // Input vector of one token (for tests / nearest-neighbor probes).
  Vec WordVector(TokenId token) const;

 private:
  Word2VecOptions options_;
  size_t vocab_size_ = 0;
  std::vector<float> input_;   // vocab_size x dim
  std::vector<float> output_;  // vocab_size x dim
};

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_WORD2VEC_H_
