#include "baselines/pipeline.h"

#include <unordered_set>

#include "baselines/dbscan.h"
#include "baselines/hdbscan.h"

namespace infoshield {

BaselineResult ClusterEmbeddings(const std::vector<Vec>& embeddings,
                                 const EmbedClusterOptions& options) {
  BaselineResult result;
  switch (options.algo) {
    case ClusterAlgo::kHdbscan: {
      HdbscanOptions ho;
      ho.min_cluster_size = options.min_cluster_size;
      result.labels = Hdbscan(embeddings, ho);
      break;
    }
    case ClusterAlgo::kDbscan: {
      DbscanOptions dopt;
      dopt.eps = options.dbscan_eps;
      dopt.min_pts = options.min_cluster_size;
      result.labels = Dbscan(embeddings, dopt);
      break;
    }
  }
  result.suspicious.reserve(result.labels.size());
  std::unordered_set<int64_t> distinct;
  for (int64_t l : result.labels) {
    result.suspicious.push_back(l >= 0);
    if (l >= 0) distinct.insert(l);
  }
  result.num_clusters = distinct.size();
  return result;
}

BaselineResult EmbedAndCluster(DocumentEmbedder& embedder,
                               const Corpus& corpus,
                               const EmbedClusterOptions& options,
                               uint64_t seed) {
  embedder.Train(corpus, seed);
  std::vector<Vec> embeddings = EmbedCorpus(embedder, corpus);
  return ClusterEmbeddings(embeddings, options);
}

}  // namespace infoshield
