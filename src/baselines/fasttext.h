// FastText-style subword embeddings (Bojanowski et al. 2017): a word's
// input vector is the mean of hashed character-n-gram bucket vectors
// (plus the whole word), trained with skip-gram negative sampling. The
// subword buckets make the model robust to the misspellings that pervade
// escort ads and tweets — the property the paper's FastText-cl baseline
// relies on.

#ifndef INFOSHIELD_BASELINES_FASTTEXT_H_
#define INFOSHIELD_BASELINES_FASTTEXT_H_

#include <string>

#include "baselines/embedding.h"
#include "text/corpus.h"

namespace infoshield {

struct FastTextOptions {
  size_t dim = 64;
  size_t window = 5;
  size_t negative_samples = 5;
  double learning_rate = 0.025;
  size_t epochs = 3;
  size_t min_char_ngram = 3;
  size_t max_char_ngram = 5;
  size_t num_buckets = 1 << 17;
};

class FastText : public DocumentEmbedder {
 public:
  FastText() = default;
  explicit FastText(FastTextOptions options) : options_(options) {}

  void Train(const Corpus& corpus, uint64_t seed) override;

  Vec Embed(const Document& doc) const override;

  size_t dim() const override { return options_.dim; }

  // Composes a word vector from its subword buckets — works for words
  // never seen in training (out-of-vocabulary generalization).
  Vec WordVectorFromString(const std::string& word) const;

 private:
  // Bucket ids for a word: hashed char n-grams of "<word>".
  std::vector<uint32_t> Buckets(const std::string& word) const;
  Vec ComposeFromBuckets(const std::vector<uint32_t>& buckets) const;

  FastTextOptions options_;
  size_t vocab_size_ = 0;
  std::vector<std::vector<uint32_t>> token_buckets_;  // per vocab token
  std::vector<float> input_;   // num_buckets x dim
  std::vector<float> output_;  // vocab_size x dim
};

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_FASTTEXT_H_
