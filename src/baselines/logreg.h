// Logistic regression over hashed bag-of-words features, trained with
// SGD. Stand-in for the paper's supervised Twitter baselines (Yang,
// Ahmed, BotOrNot), which rely on platform features and closed data: it
// marks the "supervised" rows of Table VIII with a method that consumes
// the same text the unsupervised methods see.

#ifndef INFOSHIELD_BASELINES_LOGREG_H_
#define INFOSHIELD_BASELINES_LOGREG_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"

namespace infoshield {

struct LogRegOptions {
  size_t num_features = 1 << 18;  // hashed feature space
  double learning_rate = 0.1;
  double l2 = 1e-6;
  size_t epochs = 5;
};

class LogisticRegression {
 public:
  LogisticRegression() = default;
  explicit LogisticRegression(LogRegOptions options) : options_(options) {}

  // labels[i]: whether corpus document i is positive. Trains with SGD in
  // a seeded random order.
  void Train(const Corpus& corpus, const std::vector<bool>& labels,
             uint64_t seed);

  // P(positive | doc).
  double PredictProbability(const Document& doc) const;

  bool Predict(const Document& doc, double threshold = 0.5) const {
    return PredictProbability(doc) >= threshold;
  }

 private:
  // Hashed unigram + bigram feature ids of a document.
  std::vector<uint32_t> Features(const Document& doc) const;

  LogRegOptions options_;
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_LOGREG_H_
