// Lloyd's k-means with k-means++ initialization — the classic centroid
// baseline contrasted in the paper's related work (§II-C).

#ifndef INFOSHIELD_BASELINES_KMEANS_H_
#define INFOSHIELD_BASELINES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"

namespace infoshield {

struct KmeansOptions {
  size_t k = 8;
  size_t max_iterations = 50;
};

struct KmeansResult {
  std::vector<int64_t> labels;  // cluster per point, 0..k-1
  std::vector<Vec> centroids;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
  size_t iterations = 0;
};

KmeansResult Kmeans(const std::vector<Vec>& points,
                    const KmeansOptions& options, uint64_t seed);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_KMEANS_H_
