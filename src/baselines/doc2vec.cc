#include "baselines/doc2vec.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

void Doc2Vec::Train(const Corpus& corpus, uint64_t seed) {
  const size_t dim = options_.dim;
  const size_t vocab = std::max<size_t>(corpus.vocab().size(), 1);
  num_docs_ = corpus.size();
  Rng rng(seed);

  doc_vecs_.assign(num_docs_ * dim, 0.0f);
  word_out_.assign(vocab * dim, 0.0f);
  for (float& x : doc_vecs_) {
    x = static_cast<float>((rng.NextDouble() - 0.5) / dim);
  }

  std::vector<size_t> counts(vocab, 0);
  for (const Document& doc : corpus.docs()) {
    for (TokenId t : doc.tokens) ++counts[t];
  }
  NegativeSampler sampler(counts);

  std::vector<float> grad(dim);
  const float lr = static_cast<float>(options_.learning_rate);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Document& doc : corpus.docs()) {
      float* dv = &doc_vecs_[static_cast<size_t>(doc.id) * dim];
      for (TokenId word : doc.tokens) {
        std::fill(grad.begin(), grad.end(), 0.0f);
        for (size_t k = 0; k <= options_.negative_samples; ++k) {
          TokenId target;
          float label;
          if (k == 0) {
            target = word;
            label = 1.0f;
          } else {
            target = sampler.Sample(rng, word);
            label = 0.0f;
          }
          float* out = &word_out_[target * dim];
          float score = 0.0f;
          for (size_t d = 0; d < dim; ++d) score += dv[d] * out[d];
          const float g = (label - FastSigmoid(score)) * lr;
          for (size_t d = 0; d < dim; ++d) {
            grad[d] += g * out[d];
            out[d] += g * dv[d];
          }
        }
        for (size_t d = 0; d < dim; ++d) dv[d] += grad[d];
      }
    }
  }
}

Vec Doc2Vec::Embed(const Document& doc) const {
  CHECK_LT(static_cast<size_t>(doc.id), num_docs_);
  const float* dv = &doc_vecs_[static_cast<size_t>(doc.id) * options_.dim];
  return Vec(dv, dv + options_.dim);
}

}  // namespace infoshield
