#include "baselines/embedding.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

float Dot(const Vec& a, const Vec& b) {
  CHECK_EQ(a.size(), b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

float L2Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

void L2Normalize(Vec& a) {
  float n = L2Norm(a);
  if (n <= 0.0f) return;
  for (float& x : a) x /= n;
}

float CosineDistance(const Vec& a, const Vec& b) {
  float na = L2Norm(a);
  float nb = L2Norm(b);
  if (na <= 0.0f || nb <= 0.0f) return 2.0f;
  return 1.0f - Dot(a, b) / (na * nb);
}

float EuclideanDistance(const Vec& a, const Vec& b) {
  CHECK_EQ(a.size(), b.size());
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::vector<Vec> EmbedCorpus(const DocumentEmbedder& embedder,
                             const Corpus& corpus) {
  std::vector<Vec> out;
  out.reserve(corpus.size());
  for (const Document& doc : corpus.docs()) {
    Vec v = embedder.Embed(doc);
    L2Normalize(v);
    out.push_back(std::move(v));
  }
  return out;
}

NegativeSampler::NegativeSampler(const std::vector<size_t>& counts) {
  // Fixed-size alias-free table, as in the original word2vec: token i
  // occupies a share of slots proportional to counts[i]^0.75.
  constexpr size_t kTableSize = 1 << 20;
  table_.reserve(kTableSize);
  double total = 0.0;
  for (size_t c : counts) total += std::pow(static_cast<double>(c), 0.75);
  if (total <= 0.0 || counts.empty()) {
    table_.push_back(0);
    return;
  }
  double cumulative = 0.0;
  size_t token = 0;
  double share =
      std::pow(static_cast<double>(counts[0]), 0.75) / total;
  for (size_t slot = 0; slot < kTableSize; ++slot) {
    table_.push_back(static_cast<uint32_t>(token));
    if (static_cast<double>(slot) / kTableSize > cumulative + share &&
        token + 1 < counts.size()) {
      cumulative += share;
      ++token;
      share = std::pow(static_cast<double>(counts[token]), 0.75) / total;
    }
  }
}

TokenId NegativeSampler::Sample(Rng& rng, TokenId exclude) const {
  for (int attempt = 0; attempt < 8; ++attempt) {
    TokenId t = table_[rng.NextIndex(table_.size())];
    if (t != exclude) return t;
  }
  return table_[rng.NextIndex(table_.size())];
}

float FastSigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace infoshield
