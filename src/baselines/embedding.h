// Document-embedding interface and vector math shared by the baselines
// (paper §V-A4: Word2Vec-cl, Doc2Vec-cl, FastText-cl are embedding models
// trained from scratch on the ad corpus, then clustered with HDBSCAN with
// minimum cluster size 3).

#ifndef INFOSHIELD_BASELINES_EMBEDDING_H_
#define INFOSHIELD_BASELINES_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/vocabulary.h"
#include "util/random.h"

namespace infoshield {

using Vec = std::vector<float>;

float Dot(const Vec& a, const Vec& b);
float L2Norm(const Vec& a);
void L2Normalize(Vec& a);
// 1 - cosine similarity, in [0, 2]; zero vectors are maximally distant.
float CosineDistance(const Vec& a, const Vec& b);
float EuclideanDistance(const Vec& a, const Vec& b);

// Interface for trainable document embedders.
class DocumentEmbedder {
 public:
  virtual ~DocumentEmbedder() = default;

  // Trains on the corpus. Must be called before Embed.
  virtual void Train(const Corpus& corpus, uint64_t seed) = 0;

  // Embeds one (corpus) document.
  virtual Vec Embed(const Document& doc) const = 0;

  virtual size_t dim() const = 0;
};

// Embeds every corpus document and L2-normalizes the vectors.
std::vector<Vec> EmbedCorpus(const DocumentEmbedder& embedder,
                             const Corpus& corpus);

// Shared machinery for negative-sampling training: a unigram^0.75 noise
// distribution over token ids (Mikolov et al. 2013).
class NegativeSampler {
 public:
  // counts[i] = frequency of token i.
  explicit NegativeSampler(const std::vector<size_t>& counts);

  // Draws a token id; never returns `exclude`.
  TokenId Sample(class Rng& rng, TokenId exclude) const;

 private:
  std::vector<uint32_t> table_;
};

// Fast approximate logistic sigmoid (table-based, as in word2vec.c).
float FastSigmoid(float x);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_EMBEDDING_H_
