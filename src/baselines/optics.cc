#include "baselines/optics.h"

#include <algorithm>
#include <limits>

namespace infoshield {

namespace {

constexpr double kUndef = OpticsResult::kUndefinedReachability;

}  // namespace

std::vector<int64_t> OpticsResult::ExtractDbscan(double eps) const {
  std::vector<int64_t> labels(ordering.size(), -1);
  int64_t cluster = -1;
  for (uint32_t p : ordering) {
    const double r = reachability[p];
    if (r == kUndef || r > eps) {
      const double core = core_distance[p];
      if (core != kUndef && core <= eps) {
        ++cluster;  // p starts a new cluster
        labels[p] = cluster;
      } else {
        labels[p] = -1;  // noise
      }
    } else {
      labels[p] = cluster;
    }
  }
  return labels;
}

OpticsResult Optics(const std::vector<Vec>& points,
                    const OpticsOptions& options) {
  const size_t n = points.size();
  OpticsResult result;
  result.reachability.assign(n, kUndef);
  result.core_distance.assign(n, kUndef);
  result.ordering.reserve(n);
  if (n == 0) return result;

  std::vector<bool> processed(n, false);
  std::vector<double> dist(n);

  // Distances from one point to all others; also derives core distance.
  auto scan = [&](size_t p) {
    size_t within = 0;
    for (size_t j = 0; j < n; ++j) {
      dist[j] = CosineDistance(points[p], points[j]);
      if (dist[j] <= options.max_eps) ++within;
    }
    if (within >= options.min_pts) {
      std::vector<double> sorted(dist);
      std::nth_element(sorted.begin(),
                       sorted.begin() + (options.min_pts - 1),
                       sorted.end());
      result.core_distance[p] = sorted[options.min_pts - 1];
    }
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Seed list as a simple (reachability, id) pool; n is small enough
    // for linear minimum extraction.
    std::vector<double> seed_reach(n,
                                   std::numeric_limits<double>::infinity());
    std::vector<bool> in_seeds(n, false);

    processed[start] = true;
    result.ordering.push_back(static_cast<uint32_t>(start));
    scan(start);
    if (result.core_distance[start] != kUndef) {
      for (size_t j = 0; j < n; ++j) {
        if (processed[j] || dist[j] > options.max_eps) continue;
        const double new_reach =
            std::max(result.core_distance[start], dist[j]);
        if (new_reach < seed_reach[j]) {
          seed_reach[j] = new_reach;
          in_seeds[j] = true;
        }
      }
    }

    while (true) {
      // Pop the unprocessed seed with the smallest reachability.
      size_t best = n;
      double best_reach = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < n; ++j) {
        if (in_seeds[j] && !processed[j] && seed_reach[j] < best_reach) {
          best_reach = seed_reach[j];
          best = j;
        }
      }
      if (best == n) break;
      processed[best] = true;
      in_seeds[best] = false;
      result.reachability[best] = best_reach;
      result.ordering.push_back(static_cast<uint32_t>(best));
      scan(best);
      if (result.core_distance[best] == kUndef) continue;
      for (size_t j = 0; j < n; ++j) {
        if (processed[j] || dist[j] > options.max_eps) continue;
        const double new_reach =
            std::max(result.core_distance[best], dist[j]);
        if (new_reach < seed_reach[j]) {
          seed_reach[j] = new_reach;
          in_seeds[j] = true;
        }
      }
    }
  }
  return result;
}

}  // namespace infoshield
