#include "baselines/gmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/kmeans.h"
#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace internal {

double AndersonDarlingStatistic(std::vector<double> samples) {
  const size_t n = samples.size();
  if (n < 2) return 0.0;
  // z-score the samples.
  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n - 1);
  if (var <= 0.0) return 0.0;
  const double sd = std::sqrt(var);
  for (double& x : samples) x = (x - mean) / sd;
  std::sort(samples.begin(), samples.end());

  auto normal_cdf = [](double z) {
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
  };
  double a2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double phi = normal_cdf(samples[i]);
    double phi_rev = normal_cdf(samples[n - 1 - i]);
    phi = std::clamp(phi, 1e-12, 1.0 - 1e-12);
    phi_rev = std::clamp(phi_rev, 1e-12, 1.0 - 1e-12);
    a2 += (2.0 * static_cast<double>(i) + 1.0) *
          (std::log(phi) + std::log(1.0 - phi_rev));
  }
  a2 = -static_cast<double>(n) - a2 / static_cast<double>(n);
  // Small-sample correction for estimated mean/variance (case 3).
  const double nn = static_cast<double>(n);
  return a2 * (1.0 + 4.0 / nn - 25.0 / (nn * nn));
}

}  // namespace internal

namespace {

// Splits one cluster's points with 2-means and reports whether the
// Anderson–Darling test rejects normality along the split direction.
bool ShouldSplit(const std::vector<Vec>& points,
                 const std::vector<uint32_t>& member_ids,
                 const GmeansOptions& options, uint64_t seed,
                 std::vector<Vec>* children) {
  if (member_ids.size() < 8) return false;  // too small to test
  std::vector<Vec> members;
  members.reserve(member_ids.size());
  for (uint32_t id : member_ids) members.push_back(points[id]);

  KmeansOptions ko;
  ko.k = 2;
  ko.max_iterations = options.kmeans_iterations;
  KmeansResult split = Kmeans(members, ko, seed);
  if (split.centroids.size() < 2) return false;

  // Project members onto the axis connecting the two child centroids.
  const Vec& c0 = split.centroids[0];
  const Vec& c1 = split.centroids[1];
  Vec axis(c0.size());
  double norm_sq = 0.0;
  for (size_t d = 0; d < axis.size(); ++d) {
    axis[d] = c0[d] - c1[d];
    norm_sq += static_cast<double>(axis[d]) * axis[d];
  }
  if (norm_sq <= 0.0) return false;
  std::vector<double> projected;
  projected.reserve(members.size());
  for (const Vec& m : members) {
    double dot = 0.0;
    for (size_t d = 0; d < axis.size(); ++d) {
      dot += static_cast<double>(m[d]) * axis[d];
    }
    projected.push_back(dot / norm_sq);
  }

  const double a2 = internal::AndersonDarlingStatistic(std::move(projected));
  if (a2 <= options.critical_value) return false;  // looks Gaussian: keep
  *children = {c0, c1};
  return true;
}

}  // namespace

GmeansResult Gmeans(const std::vector<Vec>& points,
                    const GmeansOptions& options, uint64_t seed) {
  GmeansResult result;
  const size_t n = points.size();
  if (n == 0) return result;
  Rng rng(seed);

  // Start with one cluster: the global centroid.
  const size_t dim = points[0].size();
  Vec global(dim, 0.0f);
  for (const Vec& p : points) {
    for (size_t d = 0; d < dim; ++d) global[d] += p[d];
  }
  for (float& x : global) x /= static_cast<float>(n);
  std::vector<Vec> centroids{global};

  bool changed = true;
  while (changed && centroids.size() < options.max_clusters) {
    // Lloyd assignment against the current centroid set.
    std::vector<std::vector<uint32_t>> members(centroids.size());
    std::vector<int64_t> labels(n, 0);
    for (size_t iter = 0; iter < options.kmeans_iterations; ++iter) {
      for (auto& m : members) m.clear();
      for (size_t i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::infinity();
        int64_t best_c = 0;
        for (size_t c = 0; c < centroids.size(); ++c) {
          double d = EuclideanDistance(points[i], centroids[c]);
          if (d < best) {
            best = d;
            best_c = static_cast<int64_t>(c);
          }
        }
        labels[i] = best_c;
        members[static_cast<size_t>(best_c)].push_back(
            static_cast<uint32_t>(i));
      }
      for (size_t c = 0; c < centroids.size(); ++c) {
        if (members[c].empty()) continue;
        Vec sum(dim, 0.0f);
        for (uint32_t id : members[c]) {
          for (size_t d = 0; d < dim; ++d) sum[d] += points[id][d];
        }
        for (float& x : sum) x /= static_cast<float>(members[c].size());
        centroids[c] = std::move(sum);
      }
    }

    // Test every cluster; split the non-Gaussian ones.
    changed = false;
    std::vector<Vec> next_centroids;
    for (size_t c = 0; c < centroids.size(); ++c) {
      std::vector<Vec> children;
      if (next_centroids.size() + 2 <= options.max_clusters &&
          ShouldSplit(points, members[c], options, rng.NextUint64(),
                      &children)) {
        next_centroids.push_back(std::move(children[0]));
        next_centroids.push_back(std::move(children[1]));
        changed = true;
      } else {
        next_centroids.push_back(centroids[c]);
      }
    }
    centroids = std::move(next_centroids);
    result.labels = std::move(labels);
  }

  // Final assignment against the final centroids.
  result.labels.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids.size(); ++c) {
      double d = EuclideanDistance(points[i], centroids[c]);
      if (d < best) {
        best = d;
        result.labels[i] = static_cast<int64_t>(c);
      }
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace infoshield
