// Template Matching baseline — a simplified reimplementation of the
// scalable text-template-matching approach of Li et al. (IEEE Big Data
// 2018), the paper's unsupervised anti-HT predecessor ([10], Table I).
//
// Pipeline: MinHash signatures over token shingles -> LSH banding to
// propose candidate near-duplicate pairs -> exact Jaccard verification
// -> union-find connected components as clusters. Scalable and
// unsupervised, but (as Table I notes) with limited interpretability: it
// yields clusters, not templates with slots.

#ifndef INFOSHIELD_BASELINES_TEMPLATE_MATCHING_H_
#define INFOSHIELD_BASELINES_TEMPLATE_MATCHING_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"
#include "text/vocabulary.h"

namespace infoshield {

struct TemplateMatchingOptions {
  // Token shingle width for the document's set representation.
  size_t shingle_size = 3;
  // MinHash signature length; must be divisible by `bands`.
  size_t num_hashes = 64;
  // LSH bands (rows per band = num_hashes / bands). More bands = more
  // candidate pairs = higher recall, lower precision before verification.
  // Two rows per band catches pairs down to Jaccard ~0.35 reliably —
  // the regime of templated ads whose slot fills differ.
  size_t bands = 32;
  // Candidate pairs are kept iff estimated Jaccard similarity (signature
  // agreement) reaches this threshold.
  double jaccard_threshold = 0.35;
  // Components smaller than this become noise.
  size_t min_cluster_size = 2;
  uint64_t seed = 0x5eed;
};

struct TemplateMatchingResult {
  // Cluster per document (-1 = noise).
  std::vector<int64_t> labels;
  // suspicious[i] <=> labels[i] >= 0.
  std::vector<bool> suspicious;
  size_t num_clusters = 0;
  // Candidate pairs proposed by LSH / surviving verification.
  size_t candidate_pairs = 0;
  size_t verified_pairs = 0;
};

TemplateMatchingResult TemplateMatching(const Corpus& corpus,
                                        const TemplateMatchingOptions& options);

namespace internal {
// Exposed for tests: MinHash signature of a token sequence.
std::vector<uint64_t> MinHashSignature(const std::vector<TokenId>& tokens,
                                       size_t shingle_size,
                                       size_t num_hashes, uint64_t seed);
// Fraction of agreeing signature positions (Jaccard estimate).
double SignatureSimilarity(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b);
}  // namespace internal

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_TEMPLATE_MATCHING_H_
