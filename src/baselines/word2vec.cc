#include "baselines/word2vec.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

void Word2Vec::Train(const Corpus& corpus, uint64_t seed) {
  const size_t dim = options_.dim;
  vocab_size_ = std::max<size_t>(corpus.vocab().size(), 1);
  Rng rng(seed);

  input_.assign(vocab_size_ * dim, 0.0f);
  output_.assign(vocab_size_ * dim, 0.0f);
  for (float& x : input_) {
    x = static_cast<float>((rng.NextDouble() - 0.5) / dim);
  }

  std::vector<size_t> counts(vocab_size_, 0);
  for (const Document& doc : corpus.docs()) {
    for (TokenId t : doc.tokens) ++counts[t];
  }
  NegativeSampler sampler(counts);

  std::vector<float> grad(dim);
  const float lr = static_cast<float>(options_.learning_rate);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Document& doc : corpus.docs()) {
      const auto& toks = doc.tokens;
      for (size_t center = 0; center < toks.size(); ++center) {
        // Dynamic window, as in the reference implementation.
        const size_t reduced =
            1 + rng.NextIndex(std::max<size_t>(options_.window, 1));
        const size_t lo = center >= reduced ? center - reduced : 0;
        const size_t hi = std::min(center + reduced, toks.size() - 1);
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          float* in = &input_[toks[ctx] * dim];
          std::fill(grad.begin(), grad.end(), 0.0f);
          // Positive pair + negative samples.
          for (size_t k = 0; k <= options_.negative_samples; ++k) {
            TokenId target;
            float label;
            if (k == 0) {
              target = toks[center];
              label = 1.0f;
            } else {
              target = sampler.Sample(rng, toks[center]);
              label = 0.0f;
            }
            float* out = &output_[target * dim];
            float score = 0.0f;
            for (size_t d = 0; d < dim; ++d) score += in[d] * out[d];
            const float g = (label - FastSigmoid(score)) * lr;
            for (size_t d = 0; d < dim; ++d) {
              grad[d] += g * out[d];
              out[d] += g * in[d];
            }
          }
          for (size_t d = 0; d < dim; ++d) in[d] += grad[d];
        }
      }
    }
  }
}

Vec Word2Vec::Embed(const Document& doc) const {
  Vec v(options_.dim, 0.0f);
  if (doc.tokens.empty() || input_.empty()) return v;
  for (TokenId t : doc.tokens) {
    CHECK_LT(static_cast<size_t>(t), vocab_size_);
    const float* in = &input_[t * options_.dim];
    for (size_t d = 0; d < options_.dim; ++d) v[d] += in[d];
  }
  const float inv = 1.0f / static_cast<float>(doc.tokens.size());
  for (float& x : v) x *= inv;
  return v;
}

Vec Word2Vec::WordVector(TokenId token) const {
  CHECK_LT(static_cast<size_t>(token), vocab_size_);
  const float* in = &input_[token * options_.dim];
  return Vec(in, in + options_.dim);
}

}  // namespace infoshield
