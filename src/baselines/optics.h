// OPTICS (Ankerst, Breunig, Kriegel & Sander 1999) — density-based
// cluster ordering, cited by the paper (§II-C) among the density
// clusterers relevant to micro-cluster search. Produces the reachability
// ordering plus a DBSCAN-equivalent flat extraction at a cut distance.

#ifndef INFOSHIELD_BASELINES_OPTICS_H_
#define INFOSHIELD_BASELINES_OPTICS_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"

namespace infoshield {

struct OpticsOptions {
  // Neighborhood radius used while building the ordering (cosine
  // distance; 2.0 = unbounded, the classic OPTICS setting).
  double max_eps = 2.0;
  size_t min_pts = 3;
};

struct OpticsResult {
  // Point indices in OPTICS processing order.
  std::vector<uint32_t> ordering;
  // Reachability distance per point (kUndefinedReachability if never
  // reachable), indexed by point id.
  std::vector<double> reachability;
  // Core distance per point (kUndefinedReachability if not a core
  // point), indexed by point id.
  std::vector<double> core_distance;

  static constexpr double kUndefinedReachability = -1.0;

  // DBSCAN-equivalent flat clustering at radius eps <= max_eps.
  std::vector<int64_t> ExtractDbscan(double eps) const;
};

OpticsResult Optics(const std::vector<Vec>& points,
                    const OpticsOptions& options);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_OPTICS_H_
