// The paper's *-cl baseline pipelines (§V-A4): train an embedding model
// on the corpus, embed every document, cluster with HDBSCAN (min cluster
// size 3), and call every clustered document "suspicious".

#ifndef INFOSHIELD_BASELINES_PIPELINE_H_
#define INFOSHIELD_BASELINES_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"
#include "text/corpus.h"

namespace infoshield {

enum class ClusterAlgo {
  kHdbscan = 0,  // the paper's choice
  kDbscan = 1,
};

struct EmbedClusterOptions {
  ClusterAlgo algo = ClusterAlgo::kHdbscan;
  size_t min_cluster_size = 3;  // paper baseline setting
  double dbscan_eps = 0.2;
};

struct BaselineResult {
  // Cluster per document (-1 = noise).
  std::vector<int64_t> labels;
  // suspicious[i] <=> labels[i] >= 0.
  std::vector<bool> suspicious;
  size_t num_clusters = 0;
};

// Trains `embedder` on the corpus, embeds it, clusters.
BaselineResult EmbedAndCluster(DocumentEmbedder& embedder,
                               const Corpus& corpus,
                               const EmbedClusterOptions& options,
                               uint64_t seed);

// Clusters precomputed embeddings.
BaselineResult ClusterEmbeddings(const std::vector<Vec>& embeddings,
                                 const EmbedClusterOptions& options);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_PIPELINE_H_
