#include "baselines/fasttext.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace {

uint32_t HashSubword(const std::string& s, size_t begin, size_t len,
                     size_t num_buckets) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = begin; i < begin + len; ++i) {
    h ^= static_cast<unsigned char>(s[i]);
    h *= 0x100000001b3ULL;
  }
  return static_cast<uint32_t>(h % num_buckets);
}

}  // namespace

std::vector<uint32_t> FastText::Buckets(const std::string& word) const {
  const std::string padded = "<" + word + ">";
  std::vector<uint32_t> buckets;
  // The whole padded word is always a bucket.
  buckets.push_back(
      HashSubword(padded, 0, padded.size(), options_.num_buckets));
  for (size_t n = options_.min_char_ngram;
       n <= options_.max_char_ngram && n < padded.size(); ++n) {
    for (size_t b = 0; b + n <= padded.size(); ++b) {
      buckets.push_back(HashSubword(padded, b, n, options_.num_buckets));
    }
  }
  return buckets;
}

Vec FastText::ComposeFromBuckets(const std::vector<uint32_t>& buckets) const {
  Vec v(options_.dim, 0.0f);
  if (buckets.empty() || input_.empty()) return v;
  for (uint32_t b : buckets) {
    const float* in = &input_[static_cast<size_t>(b) * options_.dim];
    for (size_t d = 0; d < options_.dim; ++d) v[d] += in[d];
  }
  const float inv = 1.0f / static_cast<float>(buckets.size());
  for (float& x : v) x *= inv;
  return v;
}

void FastText::Train(const Corpus& corpus, uint64_t seed) {
  const size_t dim = options_.dim;
  vocab_size_ = std::max<size_t>(corpus.vocab().size(), 1);
  Rng rng(seed);

  token_buckets_.clear();
  token_buckets_.reserve(vocab_size_);
  for (size_t t = 0; t < corpus.vocab().size(); ++t) {
    token_buckets_.push_back(
        Buckets(corpus.vocab().Word(static_cast<TokenId>(t))));
  }
  if (token_buckets_.empty()) token_buckets_.push_back({0});

  input_.assign(options_.num_buckets * dim, 0.0f);
  output_.assign(vocab_size_ * dim, 0.0f);
  for (float& x : input_) {
    x = static_cast<float>((rng.NextDouble() - 0.5) / dim);
  }

  std::vector<size_t> counts(vocab_size_, 0);
  for (const Document& doc : corpus.docs()) {
    for (TokenId t : doc.tokens) ++counts[t];
  }
  NegativeSampler sampler(counts);

  std::vector<float> in_vec(dim);
  std::vector<float> grad(dim);
  const float lr = static_cast<float>(options_.learning_rate);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const Document& doc : corpus.docs()) {
      const auto& toks = doc.tokens;
      for (size_t center = 0; center < toks.size(); ++center) {
        const size_t reduced =
            1 + rng.NextIndex(std::max<size_t>(options_.window, 1));
        const size_t lo = center >= reduced ? center - reduced : 0;
        const size_t hi = std::min(center + reduced, toks.size() - 1);
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          const auto& buckets = token_buckets_[toks[ctx]];
          // Compose the context word's input vector from its buckets.
          std::fill(in_vec.begin(), in_vec.end(), 0.0f);
          for (uint32_t b : buckets) {
            const float* in = &input_[static_cast<size_t>(b) * dim];
            for (size_t d = 0; d < dim; ++d) in_vec[d] += in[d];
          }
          const float inv = 1.0f / static_cast<float>(buckets.size());
          for (float& x : in_vec) x *= inv;

          std::fill(grad.begin(), grad.end(), 0.0f);
          for (size_t k = 0; k <= options_.negative_samples; ++k) {
            TokenId target;
            float label;
            if (k == 0) {
              target = toks[center];
              label = 1.0f;
            } else {
              target = sampler.Sample(rng, toks[center]);
              label = 0.0f;
            }
            float* out = &output_[target * dim];
            float score = 0.0f;
            for (size_t d = 0; d < dim; ++d) score += in_vec[d] * out[d];
            const float g = (label - FastSigmoid(score)) * lr;
            for (size_t d = 0; d < dim; ++d) {
              grad[d] += g * out[d];
              out[d] += g * in_vec[d];
            }
          }
          // Distribute the gradient across the buckets.
          for (uint32_t b : buckets) {
            float* in = &input_[static_cast<size_t>(b) * dim];
            for (size_t d = 0; d < dim; ++d) in[d] += grad[d] * inv;
          }
        }
      }
    }
  }
}

Vec FastText::Embed(const Document& doc) const {
  Vec v(options_.dim, 0.0f);
  if (doc.tokens.empty() || input_.empty()) return v;
  for (TokenId t : doc.tokens) {
    CHECK_LT(static_cast<size_t>(t), token_buckets_.size());
    Vec w = ComposeFromBuckets(token_buckets_[t]);
    for (size_t d = 0; d < options_.dim; ++d) v[d] += w[d];
  }
  const float inv = 1.0f / static_cast<float>(doc.tokens.size());
  for (float& x : v) x *= inv;
  return v;
}

Vec FastText::WordVectorFromString(const std::string& word) const {
  return ComposeFromBuckets(Buckets(word));
}

}  // namespace infoshield
