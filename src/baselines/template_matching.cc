#include "baselines/template_matching.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/connected_components.h"
#include "graph/union_find.h"
#include "text/ngram.h"
#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace internal {

std::vector<uint64_t> MinHashSignature(const std::vector<TokenId>& tokens,
                                       size_t shingle_size,
                                       size_t num_hashes, uint64_t seed) {
  // Hash parameters derived deterministically from the seed.
  std::vector<uint64_t> mult(num_hashes);
  std::vector<uint64_t> add(num_hashes);
  uint64_t sm = seed;
  for (size_t h = 0; h < num_hashes; ++h) {
    mult[h] = SplitMix64(sm) | 1;  // odd multiplier
    add[h] = SplitMix64(sm);
  }

  std::vector<uint64_t> signature(num_hashes,
                                  0xFFFFFFFFFFFFFFFFull);
  if (tokens.empty()) return signature;
  const size_t n = std::min(shingle_size, tokens.size());
  for (size_t begin = 0; begin + n <= tokens.size(); ++begin) {
    const uint64_t shingle = HashNgram(tokens.data() + begin, n);
    for (size_t h = 0; h < num_hashes; ++h) {
      const uint64_t v = shingle * mult[h] + add[h];
      signature[h] = std::min(signature[h], v);
    }
  }
  return signature;
}

double SignatureSimilarity(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace internal

TemplateMatchingResult TemplateMatching(
    const Corpus& corpus, const TemplateMatchingOptions& options) {
  TemplateMatchingResult result;
  const size_t n = corpus.size();
  result.labels.assign(n, -1);
  result.suspicious.assign(n, false);
  if (n == 0) return result;
  CHECK_GT(options.bands, 0u);
  CHECK_EQ(options.num_hashes % options.bands, 0u);
  const size_t rows = options.num_hashes / options.bands;

  // Signatures.
  std::vector<std::vector<uint64_t>> signatures;
  signatures.reserve(n);
  for (const Document& doc : corpus.docs()) {
    signatures.push_back(internal::MinHashSignature(
        doc.tokens, options.shingle_size, options.num_hashes,
        options.seed));
  }

  // LSH banding: documents whose band-slice hashes collide become
  // candidate pairs (verified before unioning).
  UnionFind uf(n);
  std::unordered_set<uint64_t> seen_pairs;
  for (size_t band = 0; band < options.bands; ++band) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    for (size_t i = 0; i < n; ++i) {
      if (corpus.doc(static_cast<DocId>(i)).tokens.empty()) continue;
      uint64_t h = 0xcbf29ce484222325ULL ^ band;
      for (size_t r = 0; r < rows; ++r) {
        h ^= signatures[i][band * rows + r];
        h *= 0x100000001b3ULL;
      }
      buckets[h].push_back(static_cast<uint32_t>(i));
    }
    // determinism: the (docs[0], docs[k]) pair set per bucket is fixed by
    // the deterministic bucket contents; union order only moves roots,
    // and ExtractComponents canonicalizes component emission.
    for (const auto& [hash, docs] : buckets) {
      if (docs.size() < 2) continue;
      // Verify each doc against the bucket's first member (transitive
      // closure via union-find keeps this linear in bucket size).
      for (size_t k = 1; k < docs.size(); ++k) {
        const uint64_t pair_key =
            (static_cast<uint64_t>(docs[0]) << 32) | docs[k];
        if (!seen_pairs.insert(pair_key).second) continue;
        ++result.candidate_pairs;
        if (internal::SignatureSimilarity(signatures[docs[0]],
                                          signatures[docs[k]]) >=
            options.jaccard_threshold) {
          ++result.verified_pairs;
          uf.Union(docs[0], docs[k]);
        }
      }
    }
  }

  Components components =
      ExtractComponents(uf, options.min_cluster_size);
  for (size_t c = 0; c < components.groups.size(); ++c) {
    for (uint32_t d : components.groups[c]) {
      result.labels[d] = static_cast<int64_t>(c);
      result.suspicious[d] = true;
    }
  }
  result.num_clusters = components.groups.size();
  return result;
}

}  // namespace infoshield
