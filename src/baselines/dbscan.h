// DBSCAN (Ester et al. 1996) over embedded documents, brute-force
// neighborhoods. Used as a density-clustering baseline component.

#ifndef INFOSHIELD_BASELINES_DBSCAN_H_
#define INFOSHIELD_BASELINES_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"

namespace infoshield {

struct DbscanOptions {
  // Neighborhood radius (cosine distance on normalized vectors).
  double eps = 0.2;
  // Minimum neighborhood size (including the point itself) for a core
  // point.
  size_t min_pts = 3;
};

// Returns a label per point: cluster ids from 0 upward, -1 for noise.
std::vector<int64_t> Dbscan(const std::vector<Vec>& points,
                            const DbscanOptions& options);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_DBSCAN_H_
