#include "baselines/dbscan.h"

#include <deque>

namespace infoshield {

namespace {

std::vector<uint32_t> Neighbors(const std::vector<Vec>& points, size_t i,
                                double eps) {
  std::vector<uint32_t> out;
  for (size_t j = 0; j < points.size(); ++j) {
    if (CosineDistance(points[i], points[j]) <= eps) {
      out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

}  // namespace

std::vector<int64_t> Dbscan(const std::vector<Vec>& points,
                            const DbscanOptions& options) {
  const size_t n = points.size();
  constexpr int64_t kUnvisited = -2;
  constexpr int64_t kNoise = -1;
  std::vector<int64_t> labels(n, kUnvisited);
  int64_t next_cluster = 0;

  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    std::vector<uint32_t> seeds = Neighbors(points, i, options.eps);
    if (seeds.size() < options.min_pts) {
      labels[i] = kNoise;
      continue;
    }
    const int64_t cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<uint32_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      uint32_t q = queue.front();
      queue.pop_front();
      if (labels[q] == kNoise) labels[q] = cluster;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      std::vector<uint32_t> q_neighbors = Neighbors(points, q, options.eps);
      if (q_neighbors.size() >= options.min_pts) {
        for (uint32_t w : q_neighbors) queue.push_back(w);
      }
    }
  }
  return labels;
}

}  // namespace infoshield
