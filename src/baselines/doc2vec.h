// Doc2Vec in the PV-DBOW flavor (Le & Mikolov 2014): each document owns a
// trainable vector optimized to predict the document's words via negative
// sampling. The paper's Doc2Vec-cl baseline clusters these document
// vectors directly.

#ifndef INFOSHIELD_BASELINES_DOC2VEC_H_
#define INFOSHIELD_BASELINES_DOC2VEC_H_

#include "baselines/embedding.h"
#include "text/corpus.h"

namespace infoshield {

struct Doc2VecOptions {
  size_t dim = 64;
  size_t negative_samples = 5;
  double learning_rate = 0.025;
  size_t epochs = 5;
};

class Doc2Vec : public DocumentEmbedder {
 public:
  Doc2Vec() = default;
  explicit Doc2Vec(Doc2VecOptions options) : options_(options) {}

  void Train(const Corpus& corpus, uint64_t seed) override;

  // Returns the trained vector of a corpus document (doc.id indexes the
  // training corpus; embedding unseen documents requires retraining, as
  // with classic PV-DBOW inference).
  Vec Embed(const Document& doc) const override;

  size_t dim() const override { return options_.dim; }

 private:
  Doc2VecOptions options_;
  size_t num_docs_ = 0;
  std::vector<float> doc_vecs_;   // num_docs x dim
  std::vector<float> word_out_;   // vocab x dim
};

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_DOC2VEC_H_
