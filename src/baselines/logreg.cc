#include "baselines/logreg.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

namespace {

uint32_t HashFeature(uint64_t a, uint64_t b, size_t space) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ (b + 0xbf58476d1ce4e5b9ULL);
  h ^= h >> 29;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 32;
  return static_cast<uint32_t>(h % space);
}

double Sigmoid(double x) {
  if (x > 30) return 1.0;
  if (x < -30) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

std::vector<uint32_t> LogisticRegression::Features(const Document& doc) const {
  std::vector<uint32_t> feats;
  feats.reserve(doc.tokens.size() * 2);
  for (size_t i = 0; i < doc.tokens.size(); ++i) {
    feats.push_back(HashFeature(doc.tokens[i], 0, options_.num_features));
    if (i + 1 < doc.tokens.size()) {
      feats.push_back(HashFeature(doc.tokens[i],
                                  static_cast<uint64_t>(doc.tokens[i + 1]) + 1,
                                  options_.num_features));
    }
  }
  return feats;
}

void LogisticRegression::Train(const Corpus& corpus,
                               const std::vector<bool>& labels,
                               uint64_t seed) {
  CHECK_EQ(corpus.size(), labels.size());
  weights_.assign(options_.num_features, 0.0f);
  bias_ = 0.0f;
  Rng rng(seed);

  std::vector<uint32_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0u);

  const float lr = static_cast<float>(options_.learning_rate);
  const float decay = 1.0f - static_cast<float>(options_.l2 *
                                                options_.learning_rate);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (uint32_t idx : order) {
      const Document& doc = corpus.doc(idx);
      std::vector<uint32_t> feats = Features(doc);
      double score = bias_;
      for (uint32_t f : feats) score += weights_[f];
      const double y = labels[idx] ? 1.0 : 0.0;
      const float g = static_cast<float>(y - Sigmoid(score)) * lr;
      for (uint32_t f : feats) {
        weights_[f] = weights_[f] * decay + g;
      }
      bias_ += g;
    }
  }
}

double LogisticRegression::PredictProbability(const Document& doc) const {
  double score = bias_;
  for (uint32_t f : Features(doc)) score += weights_[f];
  return Sigmoid(score);
}

}  // namespace infoshield
