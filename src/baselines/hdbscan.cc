#include "baselines/hdbscan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/union_find.h"
#include "util/logging.h"

namespace infoshield {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lambda = 1/distance with a floor so exact duplicates stay finite.
double LambdaOf(double distance) {
  return 1.0 / std::max(distance, 1e-9);
}

struct MstEdge {
  uint32_t a;
  uint32_t b;
  double weight;
};

// Prim's algorithm over the implicit complete mutual-reachability graph.
std::vector<MstEdge> MutualReachabilityMst(const std::vector<Vec>& points,
                                           const std::vector<double>& core) {
  const size_t n = points.size();
  std::vector<MstEdge> mst;
  if (n <= 1) return mst;
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);
  std::vector<uint32_t> from(n, 0);
  uint32_t current = 0;
  in_tree[0] = true;
  for (size_t added = 1; added < n; ++added) {
    // Relax edges out of `current`.
    for (uint32_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      double d = CosineDistance(points[current], points[j]);
      double mrd = std::max({core[current], core[j], d});
      if (mrd < best[j]) {
        best[j] = mrd;
        from[j] = current;
      }
    }
    // Pick the closest outside vertex.
    double min_w = kInf;
    uint32_t pick = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < min_w) {
        min_w = best[j];
        pick = j;
      }
    }
    mst.push_back(MstEdge{from[pick], pick, best[pick]});
    in_tree[pick] = true;
    current = pick;
  }
  return mst;
}

// Single-linkage dendrogram node (points are leaves 0..n-1).
struct DendroNode {
  int left = -1;
  int right = -1;
  double distance = 0.0;
  uint32_t size = 1;
};

// Rows of the condensed tree: child (point id < n, or cluster id >= n)
// leaves `parent` at `lambda`; `size` = 1 for points.
struct CondensedRow {
  int parent;
  int child;
  double lambda;
  uint32_t size;
};

}  // namespace

std::vector<int64_t> Hdbscan(const std::vector<Vec>& points,
                             const HdbscanOptions& options) {
  const size_t n = points.size();
  std::vector<int64_t> labels(n, -1);
  const size_t mcs = std::max<size_t>(options.min_cluster_size, 2);
  if (n < mcs) return labels;
  const size_t k =
      options.min_samples > 0 ? options.min_samples : mcs;

  // --- Core distances: distance to the k-th nearest neighbor (self
  // counts as the first, at distance 0). ---
  std::vector<double> core(n, 0.0);
  {
    std::vector<double> dists(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        dists[j] = CosineDistance(points[i], points[j]);
      }
      size_t kth = std::min(k - 1, n - 1);
      std::nth_element(dists.begin(), dists.begin() + kth, dists.end());
      core[i] = dists[kth];
    }
  }

  // --- MST of the mutual-reachability graph. ---
  std::vector<MstEdge> mst = MutualReachabilityMst(points, core);
  std::sort(mst.begin(), mst.end(),
            [](const MstEdge& x, const MstEdge& y) {
              return x.weight < y.weight;
            });

  // --- Single-linkage dendrogram via union-find. ---
  std::vector<DendroNode> dendro(n);  // leaves first
  std::vector<int> component_node(n);
  std::iota(component_node.begin(), component_node.end(), 0);
  UnionFind uf(n);
  for (const MstEdge& e : mst) {
    uint32_t ra = uf.Find(e.a);
    uint32_t rb = uf.Find(e.b);
    CHECK_NE(ra, rb);
    DendroNode node;
    node.left = component_node[ra];
    node.right = component_node[rb];
    node.distance = e.weight;
    node.size = dendro[node.left].size + dendro[node.right].size;
    dendro.push_back(node);
    uf.Union(ra, rb);
    component_node[uf.Find(ra)] = static_cast<int>(dendro.size()) - 1;
  }
  const int root = static_cast<int>(dendro.size()) - 1;

  // --- Condense the dendrogram at min_cluster_size. ---
  // Cluster ids are assigned from n upward (n = root cluster).
  std::vector<CondensedRow> condensed;
  int next_cluster = static_cast<int>(n) + 1;
  struct Work {
    int node;
    int cluster;
  };
  std::vector<Work> stack{{root, static_cast<int>(n)}};

  // Drops every leaf under `node` out of `cluster` at `lambda`.
  auto spill_points = [&](int node, int cluster, double lambda) {
    std::vector<int> s{node};
    while (!s.empty()) {
      int v = s.back();
      s.pop_back();
      if (v < static_cast<int>(n)) {
        condensed.push_back(CondensedRow{cluster, v, lambda, 1});
      } else {
        s.push_back(dendro[v].left);
        s.push_back(dendro[v].right);
      }
    }
  };

  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    if (w.node < static_cast<int>(n)) {
      // A bare point reached directly: it exits its cluster last.
      condensed.push_back(
          CondensedRow{w.cluster, w.node, LambdaOf(0.0), 1});
      continue;
    }
    const DendroNode& v = dendro[w.node];
    const double lambda = LambdaOf(v.distance);
    const uint32_t left_size =
        v.left >= 0 ? dendro[v.left].size : 0;
    const uint32_t right_size =
        v.right >= 0 ? dendro[v.right].size : 0;
    const bool left_big = left_size >= mcs;
    const bool right_big = right_size >= mcs;
    if (left_big && right_big) {
      // True split: two new clusters are born.
      int lc = next_cluster++;
      int rc = next_cluster++;
      condensed.push_back(CondensedRow{w.cluster, lc, lambda, left_size});
      condensed.push_back(CondensedRow{w.cluster, rc, lambda, right_size});
      stack.push_back({v.left, lc});
      stack.push_back({v.right, rc});
    } else if (left_big) {
      spill_points(v.right, w.cluster, lambda);
      stack.push_back({v.left, w.cluster});
    } else if (right_big) {
      spill_points(v.left, w.cluster, lambda);
      stack.push_back({v.right, w.cluster});
    } else {
      spill_points(v.left, w.cluster, lambda);
      spill_points(v.right, w.cluster, lambda);
    }
  }

  const int num_clusters = next_cluster - static_cast<int>(n);

  // --- Stabilities. ---
  std::vector<double> birth_lambda(num_clusters, 0.0);
  std::vector<int> parent_of(num_clusters, -1);
  for (const CondensedRow& row : condensed) {
    if (row.child >= static_cast<int>(n)) {
      const int c = row.child - static_cast<int>(n);
      birth_lambda[c] = row.lambda;
      parent_of[c] = row.parent - static_cast<int>(n);
    }
  }
  std::vector<double> stability(num_clusters, 0.0);
  for (const CondensedRow& row : condensed) {
    const int p = row.parent - static_cast<int>(n);
    stability[p] += (row.lambda - birth_lambda[p]) *
                    static_cast<double>(row.size);
  }

  // --- Excess-of-mass cluster selection (children before parents:
  // cluster ids increase downward, so reverse id order works). ---
  std::vector<double> subtree_stability(stability);
  std::vector<bool> selected(num_clusters, false);
  std::vector<std::vector<int>> children(num_clusters);
  for (int c = 1; c < num_clusters; ++c) {
    children[parent_of[c]].push_back(c);
  }
  for (int c = num_clusters - 1; c >= 1; --c) {
    double child_sum = 0.0;
    for (int ch : children[c]) child_sum += subtree_stability[ch];
    if (children[c].empty() || stability[c] >= child_sum) {
      selected[c] = true;
      subtree_stability[c] = stability[c];
      // Deselect all descendants.
      std::vector<int> s(children[c]);
      while (!s.empty()) {
        int v = s.back();
        s.pop_back();
        selected[v] = false;
        for (int ch : children[v]) s.push_back(ch);
      }
    } else {
      subtree_stability[c] = child_sum;
    }
  }
  // The root (c == 0, "everything") is never a cluster.

  // --- Labels: each point belongs to its nearest selected ancestor. ---
  std::vector<int> point_cluster(n, -1);
  for (const CondensedRow& row : condensed) {
    if (row.child < static_cast<int>(n)) {
      point_cluster[static_cast<size_t>(row.child)] =
          row.parent - static_cast<int>(n);
    }
  }
  std::vector<int64_t> cluster_label(num_clusters, -1);
  int64_t next_label = 0;
  for (int c = 1; c < num_clusters; ++c) {
    if (selected[c]) cluster_label[c] = next_label++;
  }
  for (size_t i = 0; i < n; ++i) {
    int c = point_cluster[i];
    while (c >= 0 && !selected[c]) c = parent_of[c];
    labels[i] = (c >= 1 && selected[c]) ? cluster_label[c] : -1;
  }
  return labels;
}

}  // namespace infoshield
