#include "baselines/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/random.h"

namespace infoshield {

KmeansResult Kmeans(const std::vector<Vec>& points,
                    const KmeansOptions& options, uint64_t seed) {
  KmeansResult result;
  const size_t n = points.size();
  if (n == 0) return result;
  const size_t dim = points[0].size();
  const size_t k = std::min(options.k, n);
  Rng rng(seed);

  // k-means++ seeding.
  result.centroids.push_back(points[rng.NextIndex(n)]);
  std::vector<double> min_sq(n, 0.0);
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Vec& c : result.centroids) {
        double d = EuclideanDistance(points[i], c);
        best = std::min(best, static_cast<double>(d) * d);
      }
      min_sq[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      result.centroids.push_back(points[rng.NextIndex(n)]);
      continue;
    }
    double r = rng.NextDouble() * total;
    size_t pick = n - 1;
    for (size_t i = 0; i < n; ++i) {
      r -= min_sq[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    result.centroids.push_back(points[pick]);
  }

  result.labels.assign(n, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int64_t best_c = 0;
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        double d = EuclideanDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int64_t>(c);
        }
      }
      if (result.labels[i] != best_c) {
        result.labels[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update.
    std::vector<Vec> sums(result.centroids.size(), Vec(dim, 0.0f));
    std::vector<size_t> counts(result.centroids.size(), 0);
    for (size_t i = 0; i < n; ++i) {
      Vec& s = sums[static_cast<size_t>(result.labels[i])];
      for (size_t d = 0; d < dim; ++d) s[d] += points[i][d];
      ++counts[static_cast<size_t>(result.labels[i])];
    }
    for (size_t c = 0; c < sums.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at a random point.
        result.centroids[c] = points[rng.NextIndex(n)];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        sums[c][d] /= static_cast<float>(counts[c]);
      }
      result.centroids[c] = std::move(sums[c]);
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = EuclideanDistance(
        points[i], result.centroids[static_cast<size_t>(result.labels[i])]);
    result.inertia += d * d;
  }
  return result;
}

}  // namespace infoshield
