// G-means (Hamerly & Elkan 2003) — k-means with k chosen automatically
// by statistical testing: each cluster is split in two and kept split
// iff the data projected onto the split direction fails an
// Anderson–Darling normality test. The paper's Table I discussion names
// G-means as the parameter-free member of the centroid-clustering
// family, so it is the fair parameter-free centroid baseline.

#ifndef INFOSHIELD_BASELINES_GMEANS_H_
#define INFOSHIELD_BASELINES_GMEANS_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"

namespace infoshield {

struct GmeansOptions {
  // Anderson–Darling critical value; 1.8692 ~ significance level 0.0001
  // (Hamerly & Elkan's recommended strict setting — conservative
  // splitting).
  double critical_value = 1.8692;
  size_t max_clusters = 256;
  size_t kmeans_iterations = 30;
};

struct GmeansResult {
  std::vector<int64_t> labels;
  std::vector<Vec> centroids;
  size_t num_clusters() const { return centroids.size(); }
};

GmeansResult Gmeans(const std::vector<Vec>& points,
                    const GmeansOptions& options, uint64_t seed);

namespace internal {
// Anderson–Darling A*^2 statistic against a standard normal, applied to
// z-scored samples. Exposed for tests.
double AndersonDarlingStatistic(std::vector<double> samples);
}  // namespace internal

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_GMEANS_H_
