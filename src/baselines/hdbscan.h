// HDBSCAN* (Campello, Moulavi & Sander 2013; McInnes et al. 2017) —
// hierarchical density-based clustering, the clusterer the paper's
// *-cl baselines use with minimum cluster size 3.
//
// Pipeline: core distances (k-NN) -> mutual-reachability distances ->
// minimum spanning tree (Prim) -> single-linkage dendrogram -> condensed
// tree at min_cluster_size -> stability-based (excess-of-mass) flat
// cluster extraction. Brute-force distances: O(n^2), adequate at the
// corpus sizes the baseline benchmarks use.

#ifndef INFOSHIELD_BASELINES_HDBSCAN_H_
#define INFOSHIELD_BASELINES_HDBSCAN_H_

#include <cstdint>
#include <vector>

#include "baselines/embedding.h"

namespace infoshield {

struct HdbscanOptions {
  // Smallest grouping considered a cluster (paper baseline: 3).
  size_t min_cluster_size = 3;
  // k for core distances; 0 = use min_cluster_size.
  size_t min_samples = 0;
};

// Returns a label per point: cluster ids from 0 upward, -1 for noise.
std::vector<int64_t> Hdbscan(const std::vector<Vec>& points,
                             const HdbscanOptions& options);

}  // namespace infoshield

#endif  // INFOSHIELD_BASELINES_HDBSCAN_H_
