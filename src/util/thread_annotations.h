// Clang thread-safety-analysis annotations (no-ops elsewhere).
//
// These macros attach compile-time concurrency contracts to types,
// fields, and functions; building with a Clang compiler and
// -DINFOSHIELD_THREAD_SAFETY=ON (which adds -Wthread-safety
// -Wthread-safety-beta, errors under INFOSHIELD_WERROR) turns contract
// violations — touching a GUARDED_BY field without its mutex, calling a
// REQUIRES function unlocked, leaking a lock — into compiler
// diagnostics. GCC and other compilers see empty macros, so annotated
// code stays portable.
//
// The vocabulary (mirrors the Clang documentation):
//   CAPABILITY("mutex")       class is a lockable capability (Mutex)
//   SCOPED_CAPABILITY         RAII type that acquires/releases (MutexLock)
//   GUARDED_BY(mu)            field may only be touched holding mu
//   PT_GUARDED_BY(mu)         pointee may only be touched holding mu
//   REQUIRES(mu)              caller must hold mu
//   EXCLUDES(mu)              caller must NOT hold mu
//   ACQUIRE(mu) / RELEASE(mu) function locks / unlocks mu
//   TRY_ACQUIRE(ok, mu)       returns `ok` when mu was acquired
//   ASSERT_CAPABILITY(mu)     runtime assertion that mu is held
//   RETURN_CAPABILITY(mu)     function returns a reference to mu
//   NO_THREAD_SAFETY_ANALYSIS opt a function out (use sparingly, with a
//                             comment saying why the analysis cannot see
//                             the invariant)
//
// Only src/util/mutex.h should define new capabilities; everything else
// consumes Mutex/MutexLock/CondVar and annotates its guarded state
// (see DESIGN.md §9, "Concurrency contract").

#ifndef INFOSHIELD_UTIL_THREAD_ANNOTATIONS_H_
#define INFOSHIELD_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define INFOSHIELD_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define INFOSHIELD_THREAD_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) INFOSHIELD_THREAD_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY INFOSHIELD_THREAD_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) INFOSHIELD_THREAD_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) INFOSHIELD_THREAD_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  INFOSHIELD_THREAD_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) INFOSHIELD_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  INFOSHIELD_THREAD_ATTRIBUTE(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  INFOSHIELD_THREAD_ATTRIBUTE(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) INFOSHIELD_THREAD_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  INFOSHIELD_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif  // INFOSHIELD_UTIL_THREAD_ANNOTATIONS_H_
