#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

FlagParser& FlagParser::Register(const std::string& name, Flag flag) {
  CHECK(!flags_.count(name));
  flags_.emplace(name, std::move(flag));
  return *this;
}

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string default_value,
                                  std::string help) {
  Flag f;
  f.type = FlagType::kString;
  f.help = std::move(help);
  f.string_value = std::move(default_value);
  return Register(name, std::move(f));
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t default_value,
                               std::string help) {
  Flag f;
  f.type = FlagType::kInt;
  f.help = std::move(help);
  f.int_value = default_value;
  return Register(name, std::move(f));
}

FlagParser& FlagParser::AddDouble(const std::string& name,
                                  double default_value, std::string help) {
  Flag f;
  f.type = FlagType::kDouble;
  f.help = std::move(help);
  f.double_value = default_value;
  return Register(name, std::move(f));
}

FlagParser& FlagParser::AddBool(const std::string& name, bool default_value,
                                std::string help) {
  Flag f;
  f.type = FlagType::kBool;
  f.help = std::move(help);
  f.bool_value = default_value;
  return Register(name, std::move(f));
}

Status FlagParser::SetFromString(const std::string& name,
                                 const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  char* end = nullptr;
  switch (f.type) {
    case FlagType::kString:
      f.string_value = value;
      return Status::Ok();
    case FlagType::kInt: {
      const int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      f.int_value = v;
      return Status::Ok();
    }
    case FlagType::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      f.double_value = v;
      return Status::Ok();
    }
    case FlagType::kBool: {
      if (value == "true" || value == "1") {
        f.bool_value = true;
      } else if (value == "false" || value == "0") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      INFOSHIELD_RETURN_IF_ERROR(
          SetFromString(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.type == FlagType::kBool) {
      it->second.bool_value = true;  // bare boolean flag
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("--" + body + " is missing a value");
    }
    INFOSHIELD_RETURN_IF_ERROR(SetFromString(body, argv[++i]));
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::Get(const std::string& name,
                                        FlagType expected) const {
  auto it = flags_.find(name);
  CHECK(it != flags_.end()) << "unregistered flag " << name;
  CHECK(it->second.type == expected) << "type mismatch for flag " << name;
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Get(name, FlagType::kString).string_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return Get(name, FlagType::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return Get(name, FlagType::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return Get(name, FlagType::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program_name) const {
  std::string out = "usage: " + program_name + " [flags] [positional...]\n";
  for (const auto& [name, flag] : flags_) {
    std::string default_repr;
    const char* type_name = "";
    switch (flag.type) {
      case FlagType::kString:
        type_name = "string";
        default_repr = "\"" + flag.string_value + "\"";
        break;
      case FlagType::kInt:
        type_name = "int";
        default_repr = std::to_string(flag.int_value);
        break;
      case FlagType::kDouble:
        type_name = "double";
        default_repr = FormatDouble(flag.double_value, 4);
        break;
      case FlagType::kBool:
        type_name = "bool";
        default_repr = flag.bool_value ? "true" : "false";
        break;
    }
    out += StrFormat("  --%-24s (%s, default %s)\n      %s\n", name.c_str(),
                     type_name, default_repr.c_str(), flag.help.c_str());
  }
  return out;
}

}  // namespace infoshield
