#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infoshield {

namespace {

// Worker threads log concurrently (LOG from inside ParallelFor tasks),
// so the severity floor is shared state like any other.
Mutex g_severity_mu;
LogSeverity g_min_severity GUARDED_BY(g_severity_mu) = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  MutexLock lock(&g_severity_mu);
  g_min_severity = severity;
}

LogSeverity MinLogSeverity() {
  MutexLock lock(&g_severity_mu);
  return g_min_severity;
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_),
                 Basename(file_), line_, stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace infoshield
