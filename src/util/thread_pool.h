// Fixed-size worker pool for embarrassingly parallel stages. The fine
// stage processes coarse clusters independently, so InfoShield can fan
// them out across cores (the paper's 8-hour/4M-documents figure is a
// single laptop; multicore shortens it proportionally).
//
// All queue/bookkeeping state is guarded by mutex_ under the compile-time
// contract from util/thread_annotations.h: a Clang build with
// -DINFOSHIELD_THREAD_SAFETY=ON rejects any access outside the lock.

#ifndef INFOSHIELD_UTIL_THREAD_POOL_H_
#define INFOSHIELD_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infoshield {

class ThreadPool {
 public:
  // num_threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs on some worker. Safe to call concurrently from
  // any thread, including from inside a running task (the chain is
  // covered by Wait).
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  // Blocks until every submitted task has finished.
  void Wait() EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  // The effective worker count for `requested` (0 = hardware concurrency,
  // at least 1) — the same resolution the constructor applies. Callers
  // outside src/util/ use this instead of touching std::thread directly
  // (lint rule raw-concurrency).
  static size_t ResolveNumThreads(size_t requested);

  // Runs fn(i) for i in [0, count) across the pool and waits. fn must be
  // safe to call concurrently for distinct i.
  static void ParallelFor(size_t num_threads, size_t count,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  // Immutable after the constructor returns; joined in the destructor.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  CondVar task_available_;
  CondVar all_done_;
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_THREAD_POOL_H_
