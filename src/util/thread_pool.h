// Fixed-size worker pool for embarrassingly parallel stages. The fine
// stage processes coarse clusters independently, so InfoShield can fan
// them out across cores (the paper's 8-hour/4M-documents figure is a
// single laptop; multicore shortens it proportionally).

#ifndef INFOSHIELD_UTIL_THREAD_POOL_H_
#define INFOSHIELD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace infoshield {

class ThreadPool {
 public:
  // num_threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs on some worker.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  // Runs fn(i) for i in [0, count) across the pool and waits. fn must be
  // safe to call concurrently for distinct i.
  static void ParallelFor(size_t num_threads, size_t count,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_THREAD_POOL_H_
