// Deep invariant auditing.
//
// Every core data structure exposes a `ValidateInvariants()` entry point
// (or a free `Validate...()` function) that walks the structure and
// returns Status::Internal listing every violated invariant — a broken
// topological order, a slot table out of sync with its template, an edit
// trace that no longer replays to the original document. The auditors are
// always compiled and callable (tests exercise them directly); the *calls
// at stage boundaries* inside the algorithms are compiled in only when
// the build defines INFOSHIELD_AUDIT (CMake option of the same name) and
// can additionally be switched off at runtime with SetAuditingEnabled.
//
// Usage inside a module, at a stage boundary:
//
//   INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
//
// In an audited build this evaluates the expression and CHECK-fails with
// the full failure list if the Status is not OK; otherwise it compiles to
// nothing (the expression is not evaluated).
//
// Auditors report via Status rather than CHECKing directly so that tests
// can corrupt a structure and assert the auditor *reports* it.

#ifndef INFOSHIELD_UTIL_AUDIT_H_
#define INFOSHIELD_UTIL_AUDIT_H_

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace infoshield {
namespace audit {

// Runtime gate for the stage-boundary hooks. Defaults to true; only
// consulted in builds compiled with INFOSHIELD_AUDIT.
bool AuditingEnabled();
void SetAuditingEnabled(bool enabled);

// Process-wide audit tallies. Auditors run concurrently on thread-pool
// workers (the fine stage audits every cluster inside ParallelFor), so
// the counters live behind an annotated Mutex in audit.cc; these
// accessors are safe from any thread.
struct AuditStats {
  size_t finished = 0;  // Auditor::Finish() calls
  size_t failed = 0;    // ... of which returned a non-OK Status
};
AuditStats GetAuditStats();
void ResetAuditStats();

// Accumulates invariant failures for one subject (e.g. "PoaGraph") and
// condenses them into a single Status.
class Auditor {
 public:
  explicit Auditor(std::string subject) : subject_(std::move(subject)) {}

  // Records a failure when `ok` is false; returns `ok` so call sites can
  // skip dependent checks (e.g. don't index with an out-of-range rank).
  bool Expect(bool ok, const std::string& what);

  bool ok() const { return failures_.empty(); }
  size_t num_failures() const { return failures_.size(); }

  // OK if nothing failed, else Internal("<subject>: f1; f2; ...").
  Status Finish() const;

 private:
  std::string subject_;
  std::vector<std::string> failures_;
};

}  // namespace audit
}  // namespace infoshield

// Stage-boundary hook: audits only in INFOSHIELD_AUDIT builds, dies with
// the failure list on violation. `status_expr` must yield a Status and is
// not evaluated in non-audit builds.
#if defined(INFOSHIELD_AUDIT)
#define INFOSHIELD_AUDIT_INVARIANTS(status_expr)                \
  do {                                                          \
    if (::infoshield::audit::AuditingEnabled()) {               \
      ::infoshield::Status _audit_st = (status_expr);           \
      CHECK(_audit_st.ok()) << "invariant audit failed: "       \
                            << _audit_st.ToString();            \
    }                                                           \
  } while (0)
#else
#define INFOSHIELD_AUDIT_INVARIANTS(status_expr) ((void)0)
#endif

#endif  // INFOSHIELD_UTIL_AUDIT_H_
