// Minimal command-line flag parsing for the CLI tools and benchmark
// harnesses. Supports --name=value, --name value, and bare --bool-flag;
// everything left over is a positional argument.

#ifndef INFOSHIELD_UTIL_FLAGS_H_
#define INFOSHIELD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace infoshield {

class FlagParser {
 public:
  FlagParser() = default;

  // Registers a flag with a default value and help text. Returns *this
  // for chaining. Types: string, int64, double, bool.
  FlagParser& AddString(const std::string& name, std::string default_value,
                        std::string help);
  FlagParser& AddInt(const std::string& name, int64_t default_value,
                     std::string help);
  FlagParser& AddDouble(const std::string& name, double default_value,
                        std::string help);
  FlagParser& AddBool(const std::string& name, bool default_value,
                      std::string help);

  // Parses argv (skipping argv[0]); unknown flags or malformed values
  // produce an error Status. May be called once.
  Status Parse(int argc, const char* const* argv);

  // Accessors; the flag must have been registered (checked).
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Usage text listing every flag, its type, default, and help string.
  std::string Usage(const std::string& program_name) const;

 private:
  enum class FlagType { kString, kInt, kDouble, kBool };

  struct Flag {
    FlagType type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  FlagParser& Register(const std::string& name, Flag flag);
  Status SetFromString(const std::string& name, const std::string& value);
  const Flag& Get(const std::string& name, FlagType expected) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_FLAGS_H_
