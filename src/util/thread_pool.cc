#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace infoshield {

size_t ThreadPool::ResolveNumThreads(size_t requested) {
  if (requested == 0) {
    return std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = ResolveNumThreads(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(mutex_);
      if (tasks_.empty()) return;  // shutting down, queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t num_threads, size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads == 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  const size_t workers = std::min(pool.num_threads(), count);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&] {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace infoshield
