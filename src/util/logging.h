// Minimal logging and CHECK macros.
//
// LOG(INFO) << "...";            -- leveled logging to stderr
// CHECK(cond) << "context";      -- fatal invariant check (always on)
// CHECK_EQ/NE/LT/LE/GT/GE(a, b)  -- comparison checks with value printing
//
// CHECK is for programmer errors (broken invariants), not for input
// validation; validate inputs with Status from util/status.h.

#ifndef INFOSHIELD_UTIL_LOGGING_H_
#define INFOSHIELD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace infoshield {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Messages below this severity are suppressed. Default: kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal {

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  // analyzer: borrows(file_) -- always a __FILE__ string literal from
  // the LOG macros: static storage duration, outlives every message.
  const char* file_;
  int line_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the stream expression when a log statement is disabled.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace infoshield

#define INFOSHIELD_LOG_INFO \
  ::infoshield::internal::LogMessage(__FILE__, __LINE__, \
                                     ::infoshield::LogSeverity::kInfo)
#define INFOSHIELD_LOG_WARNING \
  ::infoshield::internal::LogMessage(__FILE__, __LINE__, \
                                     ::infoshield::LogSeverity::kWarning)
#define INFOSHIELD_LOG_ERROR \
  ::infoshield::internal::LogMessage(__FILE__, __LINE__, \
                                     ::infoshield::LogSeverity::kError)
#define INFOSHIELD_LOG_FATAL \
  ::infoshield::internal::LogMessage(__FILE__, __LINE__, \
                                     ::infoshield::LogSeverity::kFatal)

#define LOG(severity) INFOSHIELD_LOG_##severity.stream()

#define CHECK(cond)                                     \
  (cond) ? (void)0                                      \
         : ::infoshield::internal::LogMessageVoidify()& \
               INFOSHIELD_LOG_FATAL.stream()            \
               << "Check failed: " #cond " "

#define INFOSHIELD_CHECK_OP(name, op, a, b)                            \
  do {                                                                 \
    auto _va = (a);                                                    \
    auto _vb = (b);                                                    \
    if (!(_va op _vb)) {                                               \
      INFOSHIELD_LOG_FATAL.stream()                                    \
          << "Check failed: " #a " " #op " " #b " (" << _va << " vs. " \
          << _vb << ") ";                                              \
    }                                                                  \
  } while (0)

#define CHECK_EQ(a, b) INFOSHIELD_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) INFOSHIELD_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) INFOSHIELD_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) INFOSHIELD_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) INFOSHIELD_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) INFOSHIELD_CHECK_OP(GE, >=, a, b)

#endif  // INFOSHIELD_UTIL_LOGGING_H_
