// Monotonic wall-clock timer used by the benchmark harnesses.

#ifndef INFOSHIELD_UTIL_TIMER_H_
#define INFOSHIELD_UTIL_TIMER_H_

#include <chrono>

namespace infoshield {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_TIMER_H_
