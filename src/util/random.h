// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (data generators, embedding
// initialization, k-means seeding, ...) takes an explicit 64-bit seed and
// draws from Rng, so whole experiments reproduce bit-for-bit.
//
// Rng is xoshiro256** seeded via SplitMix64 (the recommended pairing);
// ZipfSampler draws from a Zipf(s) distribution over {0..n-1} with the
// alias-free rejection-inversion method of Hörmann & Derflinger, which is
// O(1) per draw and exact.

#ifndef INFOSHIELD_UTIL_RANDOM_H_
#define INFOSHIELD_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace infoshield {

// SplitMix64 step; used for seeding and as a cheap standalone mixer.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's method
  // (multiply-shift with rejection) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Uniformly chosen index into a non-empty container size.
  size_t NextIndex(size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; stable for a given (seed,
  // stream) pair regardless of how much this Rng has been consumed.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

// Zipf distribution over ranks {0, 1, ..., n-1}; rank r has probability
// proportional to 1/(r+1)^s. Natural-language token frequencies are
// approximately Zipf(1), which the data generators rely on.
class ZipfSampler {
 public:
  // n >= 1; s > 0.
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;  // threshold for the rejection test
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_RANDOM_H_
