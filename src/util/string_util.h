// Small string helpers shared across modules.

#ifndef INFOSHIELD_UTIL_STRING_UTIL_H_
#define INFOSHIELD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace infoshield {

// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on any run of ASCII whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII-only lowercasing (multibyte UTF-8 sequences pass through).
std::string ToLowerAscii(std::string_view s);

// Strips leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Fixed-precision double formatting ("%.3f" style) without locale issues.
std::string FormatDouble(double value, int precision);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_STRING_UTIL_H_
