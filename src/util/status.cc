#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace infoshield {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace infoshield
