// Status and Result<T>: exception-free error propagation across API
// boundaries, in the style of absl::Status / arrow::Result.
//
// Functions that can fail return Status (no payload) or Result<T>
// (payload-or-error). Internal invariant violations use CHECK from
// util/logging.h instead.

#ifndef INFOSHIELD_UTIL_STATUS_H_
#define INFOSHIELD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace infoshield {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kResourceExhausted,
};

// Human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// [[nodiscard]] at class level: any call that returns a Status (or a
// Result) and ignores it is a compile-time warning everywhere, an error
// under -Werror builds (tools/check.sh). Deliberate discards must be
// spelled `(void)expr` — which tools/lint.py's discarded-status rule
// also surfaces for review.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites readable: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : state_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  // Pre-condition: ok(). Checked.
  const T& value() const&;
  T& value() &;
  T&& value() &&;

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(state_);
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::value() const& {
  if (!ok()) internal::DieBadResultAccess(status());
  return std::get<T>(state_);
}

template <typename T>
T& Result<T>::value() & {
  if (!ok()) internal::DieBadResultAccess(status());
  return std::get<T>(state_);
}

template <typename T>
T&& Result<T>::value() && {
  if (!ok()) internal::DieBadResultAccess(status());
  return std::move(std::get<T>(state_));
}

// Propagates a non-OK status to the caller.
#define INFOSHIELD_RETURN_IF_ERROR(expr)              \
  do {                                                \
    ::infoshield::Status _st = (expr);                \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_STATUS_H_
