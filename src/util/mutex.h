// Annotated concurrency primitives: the only lock types the repo uses.
//
// Mutex/MutexLock/CondVar wrap the std primitives and carry the Clang
// thread-safety annotations from util/thread_annotations.h, so a Clang
// build with -DINFOSHIELD_THREAD_SAFETY=ON proves at compile time that
// every GUARDED_BY field is touched only under its mutex. Raw
// std::mutex / std::lock_guard / std::thread / std::condition_variable
// are banned outside src/util/ by tools/lint.py (rule raw-concurrency);
// new shared state must be expressed through these wrappers:
//
//   Mutex mu_;
//   std::queue<Task> tasks_ GUARDED_BY(mu_);
//
//   void Push(Task t) EXCLUDES(mu_) {
//     MutexLock lock(&mu_);
//     tasks_.push(std::move(t));
//   }
//
// CondVar waits re-acquire the mutex before returning, and (like every
// condition variable) can wake spuriously — always wait in a loop that
// re-checks the predicate while holding the lock.

#ifndef INFOSHIELD_UTIL_MUTEX_H_
#define INFOSHIELD_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace infoshield {

// A standard exclusive mutex with compile-time lock contracts. Not
// reentrant. Constexpr-constructible, so file-scope Mutex instances are
// safe to use from static initializers.
class CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock: acquires in the constructor, releases in the destructor.
// The annotation ties the scope to the capability, so Clang reports a
// GUARDED_BY access that outlives the lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to Mutex. Wait() atomically releases the
// mutex, blocks, and re-acquires it before returning; REQUIRES(mu)
// makes callers prove they hold the lock at the call site.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_UTIL_MUTEX_H_
