#include "util/mutex.h"

namespace infoshield {

// The analysis cannot see through the adopt/release dance on the
// underlying std::mutex, but the contract holds: the caller enters and
// leaves this function holding `mu` (cv_.wait unlocks while blocked and
// re-locks before returning).
void CondVar::Wait(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

}  // namespace infoshield
