#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace infoshield {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextIndex(size_t size) {
  CHECK_GT(size, 0u);
  return static_cast<size_t>(NextBounded(size));
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the original seed with the stream id so forks are independent of
  // how much of this generator has been consumed.
  uint64_t mixer = seed_ ^ (0x2545f4914f6cdd1dULL * (stream + 1));
  return Rng(SplitMix64(mixer));
}

ZipfSampler::ZipfSampler(size_t n, double s) : n_(n), s_(s) {
  CHECK_GE(n, 1u);
  CHECK_GT(s, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  t_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of 1/u^s du; antiderivative (x^(1-s) - 1)/(1-s), with the
// s == 1 limit log(x).
double ZipfSampler::H(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

size_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  // Rejection-inversion (Hörmann & Derflinger 1996) over [0.5, n+0.5].
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= t_ || u >= H(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

}  // namespace infoshield
