#include "util/audit.h"
#include "util/status.h"

#include <atomic>

namespace infoshield {
namespace audit {

namespace {
std::atomic<bool> g_auditing_enabled{true};
}  // namespace

bool AuditingEnabled() {
  return g_auditing_enabled.load(std::memory_order_relaxed);
}

void SetAuditingEnabled(bool enabled) {
  g_auditing_enabled.store(enabled, std::memory_order_relaxed);
}

bool Auditor::Expect(bool ok, const std::string& what) {
  if (!ok) failures_.push_back(what);
  return ok;
}

Status Auditor::Finish() const {
  if (failures_.empty()) return Status::Ok();
  std::string message = subject_;
  message += ": ";
  for (size_t i = 0; i < failures_.size(); ++i) {
    if (i > 0) message += "; ";
    message += failures_[i];
  }
  return Status::Internal(std::move(message));
}

}  // namespace audit
}  // namespace infoshield
