#include "util/audit.h"
#include "util/status.h"

#include <atomic>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infoshield {
namespace audit {

namespace {
// Lone atomic: the gate is a single flag read on every hook, and a
// relaxed load is both race-free and contention-free. All compound
// shared state below goes behind g_stats_mu under the compile-time
// contract.
std::atomic<bool> g_auditing_enabled{true};

Mutex g_stats_mu;
size_t g_audits_finished GUARDED_BY(g_stats_mu) = 0;
size_t g_audits_failed GUARDED_BY(g_stats_mu) = 0;
}  // namespace

bool AuditingEnabled() {
  return g_auditing_enabled.load(std::memory_order_relaxed);
}

void SetAuditingEnabled(bool enabled) {
  g_auditing_enabled.store(enabled, std::memory_order_relaxed);
}

AuditStats GetAuditStats() {
  MutexLock lock(&g_stats_mu);
  AuditStats stats;
  stats.finished = g_audits_finished;
  stats.failed = g_audits_failed;
  return stats;
}

void ResetAuditStats() {
  MutexLock lock(&g_stats_mu);
  g_audits_finished = 0;
  g_audits_failed = 0;
}

bool Auditor::Expect(bool ok, const std::string& what) {
  if (!ok) failures_.push_back(what);
  return ok;
}

Status Auditor::Finish() const {
  {
    MutexLock lock(&g_stats_mu);
    ++g_audits_finished;
    if (!failures_.empty()) ++g_audits_failed;
  }
  if (failures_.empty()) return Status::Ok();
  std::string message = subject_;
  message += ": ";
  for (size_t i = 0; i < failures_.size(); ++i) {
    if (i > 0) message += "; ";
    message += failures_[i];
  }
  return Status::Internal(std::move(message));
}

}  // namespace audit
}  // namespace infoshield
