// Incremental ingestion engine (DESIGN.md §15): fold batches of new
// documents into a live InfoShield model without re-running the whole
// pipeline, while staying byte-identical to a fresh batch run.
//
// The batch pipeline is the oracle, in the use_serial_coarse /
// use_naive_costing tradition: after ANY sequence of IngestBatch calls,
// ResultToJson(result(), corpus()) must byte-match a fresh
// InfoShield::Run over the concatenated corpus (incremental_test, the
// diff_incremental fuzz harness, and bench_incremental all enforce
// this). That contract is achievable because every stage is either
// additive or cheap to replay:
//
//   df table    — document frequency is a commutative integer sum, so a
//                 batch folds in exactly (SnapshotDfTable::ApplyBatch);
//                 readers score against a frozen snapshot.
//   top phrases — idf = lg(N/df) moves for EVERY phrase when N grows,
//                 so all documents are rescored each ingest. This is the
//                 cheap, embarrassingly-parallel part of the pipeline;
//                 the savings target is the fine stage below.
//   graph       — union–find only ever merges, so new edges union in
//                 place (growable UnionFind + the persistent
//                 CoarseEdgeAccumulator). Only when an old document's
//                 top-phrase set LOSES a phrase — or changes at all
//                 under a max_phrase_degree cap, whose edge-drop choices
//                 are replay-order-sensitive — is the graph replayed
//                 from scratch; the replay is O(edges) and allocation-
//                 cheap next to one fine cluster.
//   fine stage  — the expensive part (MDL + alignment) is skipped for
//                 every CLEAN component: identical member list, no
//                 member's top phrases changed since the cached result,
//                 and an unchanged lg V (a vocabulary-size step shifts
//                 every cost comparison, so it clears the whole cache).
//                 FineClustering::RunOnCluster reads nothing but its
//                 members' tokens, its members' top-phrase lists, and
//                 the cost model, so the cached FineResult is exact.
//
// Per-batch cost therefore scales with the size of the components the
// batch touches, not with the corpus (the acceptance criterion
// bench_incremental measures).

#ifndef INFOSHIELD_INCREMENTAL_INCREMENTAL_INFOSHIELD_H_
#define INFOSHIELD_INCREMENTAL_INCREMENTAL_INFOSHIELD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "coarse/coarse_clustering.h"
#include "core/fine_clustering.h"
#include "core/infoshield.h"
#include "graph/union_find.h"
#include "text/corpus.h"
#include "text/ngram.h"
#include "text/tokenizer.h"
#include "tfidf/snapshot_df_table.h"
#include "util/status.h"

namespace infoshield {

// Per-ingest diagnostics: what the batch touched and what got reused.
// Never part of the canonical JSON — the oracle compares results, and a
// fresh batch run has no notion of reuse.
struct IngestStats {
  // Documents in this batch / in the corpus after it.
  size_t batch_docs = 0;
  size_t total_docs = 0;
  // Documents whose top-phrase list changed this ingest (new documents
  // always count; old ones only when idf movement reordered them).
  size_t changed_docs = 0;
  // True when a lost phrase (or any change under a degree cap) forced a
  // from-scratch edge replay instead of the fast append-only union.
  bool graph_rebuilt = false;
  // True when vocabulary growth moved lg V and invalidated every cached
  // fine result.
  bool vocab_grew = false;
  // Coarse components after this ingest, split into fine re-runs and
  // cache hits (dirty + reused == total clusters).
  size_t num_coarse_clusters = 0;
  size_t dirty_clusters = 0;
  size_t reused_clusters = 0;
  // Documents inside the dirty clusters — the "touched-component size"
  // that per-batch cost is supposed to track.
  size_t dirty_cluster_docs = 0;
  // df generation after this ingest.
  uint64_t generation = 0;
  // Wall-clock breakdown in seconds.
  double df_seconds = 0.0;
  double rescore_seconds = 0.0;
  double graph_seconds = 0.0;
  double fine_seconds = 0.0;

  double total_seconds() const {
    return df_seconds + rescore_seconds + graph_seconds + fine_seconds;
  }
};

class IncrementalInfoShield {
 public:
  explicit IncrementalInfoShield(InfoShieldOptions options,
                                 TokenizerOptions tokenizer_options = {});

  IncrementalInfoShield(const IncrementalInfoShield&) = delete;
  IncrementalInfoShield& operator=(const IncrementalInfoShield&) = delete;

  // Appends `texts` to the corpus and brings result() up to date, paying
  // the fine-stage cost only for components the batch touched. Returns
  // ResourceExhausted (corpus unchanged) when the batch would overflow
  // the DocId space. An empty batch is a no-op returning zeroed stats.
  Result<IngestStats> IngestBatch(const std::vector<std::string>& texts);

  // The model over everything ingested so far — byte-identical (via
  // ResultToJson) to InfoShield::Run over corpus().
  const InfoShieldResult& result() const { return result_; }
  const Corpus& corpus() const { return corpus_; }
  const InfoShieldOptions& options() const { return options_; }
  uint64_t generation() const { return df_table_.generation(); }

  // Deep invariant audit (util/audit.h): the df table validates, the
  // graph covers exactly the corpus, per-document state arrays line up,
  // every cached fine entry's members exist, and the assembled result
  // validates against the corpus. Returns OK or an Internal status
  // listing every violation.
  Status ValidateInvariants() const;

 private:
  // One cached fine-stage output. `generation` is the df generation the
  // result was computed at; the entry is reusable while every member's
  // doc_changed_gen_ stays <= it (and lg V holds still).
  struct CachedFine {
    std::vector<DocId> members;
    FineResult result;
    uint64_t generation = 0;
  };

  // Replays the whole doc–phrase graph from scratch in canonical
  // (document, phrase-rank) order.
  void RebuildGraph();

  InfoShieldOptions options_;
  Corpus corpus_;
  SnapshotDfTable df_table_;

  // Per-document state, indexed by DocId.
  // analyzer: allow(race-infer) -- fine workers only read it
  // (RunOnCluster takes const*, the flagged write is that &-arg);
  // mutation happens serially between ingest phases
  std::vector<std::vector<PhraseHash>> doc_top_phrases_;
  std::vector<uint64_t> doc_changed_gen_;

  // Persistent doc–phrase graph (document vertices only).
  UnionFind uf_;
  CoarseEdgeAccumulator edges_;

  // Fine-result cache keyed by a cluster's smallest member (clusters
  // partition the documents, so within one generation the key is
  // unique; the stored member list disambiguates across generations).
  std::unordered_map<DocId, CachedFine> fine_cache_;
  double last_lg_vocab_ = 0.0;

  InfoShieldResult result_;
};

}  // namespace infoshield

#endif  // INFOSHIELD_INCREMENTAL_INCREMENTAL_INFOSHIELD_H_
