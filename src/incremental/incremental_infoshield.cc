#include "incremental/incremental_infoshield.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "mdl/cost_model.h"
#include "text/ngram.h"
#include "tfidf/sharded_counter.h"
#include "tfidf/tfidf_index.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace infoshield {

IncrementalInfoShield::IncrementalInfoShield(
    InfoShieldOptions options, TokenizerOptions tokenizer_options)
    : options_(options),
      corpus_(tokenizer_options),
      uf_(0),
      edges_(options.coarse.max_phrase_degree, &uf_) {
  // result_ starts as the batch pipeline's output over an empty corpus:
  // no documents, no clusters, no templates.
}

void IncrementalInfoShield::RebuildGraph() {
  uf_ = UnionFind(corpus_.size());
  edges_.Reset(&uf_);
  // Canonical (document, phrase-rank) replay — the exact edge sequence
  // the batch coarse stage consumes, so the degree cap drops the same
  // edges and the components come out byte-equal.
  for (DocId d = 0; d < corpus_.size(); ++d) {
    for (PhraseHash phrase : doc_top_phrases_[d]) {
      edges_.Add(d, phrase);
    }
  }
}

// analyzer: hot
Result<IngestStats> IncrementalInfoShield::IngestBatch(
    const std::vector<std::string>& texts) {
  IngestStats stats;
  stats.total_docs = corpus_.size();
  stats.generation = df_table_.generation();
  if (texts.empty()) return stats;

  const size_t threads = ThreadPool::ResolveNumThreads(options_.num_threads);
  const size_t old_size = corpus_.size();

  Result<DocId> first_id = corpus_.TryAddBatch(texts, threads);
  INFOSHIELD_RETURN_IF_ERROR(first_id.status());
  const size_t new_size = corpus_.size();
  stats.batch_docs = new_size - old_size;
  stats.total_docs = new_size;

  // --- df delta: per-document-deduplicated phrase counts for the new
  // documents only, folded into the snapshot table. Additivity makes the
  // folded table equal a from-scratch build over all new_size documents.
  WallTimer timer;
  {
    ShardedPhraseCounter::Local delta;
    std::unordered_set<PhraseHash> seen;
    for (size_t d = old_size; d < new_size; ++d) {
      seen.clear();
      for (const NgramSpan& g :
           ExtractNgrams(corpus_.docs()[d], options_.coarse.tfidf.max_ngram)) {
        // analyzer: allow(hot-loop-alloc) -- the hoisted `seen` set is
        // cleared and reused per document; rehashes amortize across the
        // batch (a per-document reserve target is unknowable).
        seen.insert(g.hash);
      }
      // determinism: commutative integer increments; order cannot matter.
      for (PhraseHash hash : seen) {
        delta.Increment(hash);
      }
    }
    df_table_.ApplyBatch(&delta, new_size - old_size);
  }
  const uint64_t generation = df_table_.generation();
  stats.generation = generation;
  stats.df_seconds = timer.ElapsedSeconds();

  // --- rescore every document's top phrases against the new snapshot.
  // N changed, so idf moved for every phrase and even untouched
  // documents can reorder their top list; scoring is pure and per-
  // document, so it fans out, and the diff below confines the expensive
  // consequences (graph/fine work) to documents that actually changed.
  timer.Restart();
  TfidfIndex index;
  index.BuildFromSnapshot(df_table_.Snapshot(), options_.coarse.tfidf);
  std::vector<std::vector<PhraseHash>> new_top(new_size);
  const size_t num_chunks = std::min(new_size, threads * 4);
  ThreadPool::ParallelFor(threads, num_chunks, [&](size_t chunk) {
    const size_t begin = chunk * new_size / num_chunks;
    const size_t end = (chunk + 1) * new_size / num_chunks;
    for (size_t d = begin; d < end; ++d) {
      // analyzer: allow(hot-loop-alloc) -- TopPhrases returns its scored
      // list by value (one move per document, the API contract).
      const std::vector<ScoredPhrase> scored =
          index.TopPhrases(corpus_.docs()[d]);
      std::vector<PhraseHash>& top = new_top[d];
      top.reserve(scored.size());
      for (const ScoredPhrase& phrase : scored) {
        top.push_back(phrase.hash);
      }
    }
  });
  stats.rescore_seconds = timer.ElapsedSeconds();

  // --- diff against the previous generation's top phrases.
  timer.Restart();
  bool any_old_changed = false;
  bool any_phrase_lost = false;
  std::vector<uint8_t> changed(new_size, 0);
  std::unordered_set<PhraseHash> phrase_set;
  for (size_t d = 0; d < old_size; ++d) {
    if (new_top[d] == doc_top_phrases_[d]) continue;
    changed[d] = 1;
    ++stats.changed_docs;
    any_old_changed = true;
    if (!any_phrase_lost) {
      phrase_set.clear();
      // analyzer: allow(hot-loop-alloc) -- hoisted set, cleared and
      // reused per changed document; rehashes amortize.
      phrase_set.insert(new_top[d].begin(), new_top[d].end());
      for (PhraseHash phrase : doc_top_phrases_[d]) {
        if (phrase_set.find(phrase) == phrase_set.end()) {
          any_phrase_lost = true;
          break;
        }
      }
    }
  }
  for (size_t d = old_size; d < new_size; ++d) {
    changed[d] = 1;
    ++stats.changed_docs;
  }

  // --- graph. Union–find can only merge, so the in-place fast path is
  // valid only when every change is additive: a lost phrase means a lost
  // edge, and under a degree cap ANY old-document change perturbs the
  // canonical replay order the cap's edge drops depend on. Both replays
  // produce the same components as the batch stage — the fast path by
  // anchor-invariance (components are the transitive closure of "shares
  // a top phrase", regardless of which member anchors a phrase), the
  // rebuild by literal re-execution.
  const bool must_rebuild =
      any_phrase_lost ||
      (options_.coarse.max_phrase_degree > 0 && any_old_changed);
  const std::vector<std::vector<PhraseHash>> old_top =
      std::move(doc_top_phrases_);
  doc_top_phrases_ = std::move(new_top);
  doc_changed_gen_.resize(new_size, generation);
  for (size_t d = 0; d < old_size; ++d) {
    if (changed[d]) doc_changed_gen_[d] = generation;
  }
  if (must_rebuild) {
    stats.graph_rebuilt = true;
    RebuildGraph();
  } else {
    uf_.Reserve(new_size);
    for (size_t d = old_size; d < new_size; ++d) {
      const uint32_t id = uf_.AddElement();
      CHECK_EQ(static_cast<size_t>(id), d);
    }
    for (size_t d = 0; d < new_size; ++d) {
      if (!changed[d]) continue;
      if (d < old_size) {
        // Gain-only change (a loss would have forced the rebuild): feed
        // just the added edges.
        phrase_set.clear();
        // analyzer: allow(hot-loop-alloc) -- hoisted set, cleared and
        // reused per changed document; rehashes amortize.
        phrase_set.insert(old_top[d].begin(), old_top[d].end());
        for (PhraseHash phrase : doc_top_phrases_[d]) {
          if (phrase_set.find(phrase) == phrase_set.end()) {
            edges_.Add(static_cast<DocId>(d), phrase);
          }
        }
      } else {
        for (PhraseHash phrase : doc_top_phrases_[d]) {
          edges_.Add(static_cast<DocId>(d), phrase);
        }
      }
    }
  }

  // --- components, exactly as the batch coarse stage emits them.
  CoarseResult components;
  EmitCoarseComponents(uf_, options_.coarse, &components);
  stats.num_coarse_clusters = components.clusters.size();
  stats.graph_seconds = timer.ElapsedSeconds();

  // --- fine stage over dirty components only.
  timer.Restart();
  const CostModel cost_model = CostModel::ForVocabulary(corpus_.vocab());
  if (cost_model.lg_vocab() != last_lg_vocab_) {
    // lg V enters every MDL cost comparison, so a vocabulary-size step
    // can flip accept/reject decisions in ANY cluster: drop everything.
    stats.vocab_grew = !fine_cache_.empty();
    fine_cache_.clear();
    last_lg_vocab_ = cost_model.lg_vocab();
  }

  const size_t num_clusters = components.clusters.size();
  std::vector<FineResult> fine_results(num_clusters);
  std::vector<uint64_t> result_generation(num_clusters, generation);
  std::vector<size_t> dirty;
  dirty.reserve(num_clusters);
  for (size_t ci = 0; ci < num_clusters; ++ci) {
    const std::vector<DocId>& members = components.clusters[ci];
    auto it = fine_cache_.find(members.front());
    bool reusable = it != fine_cache_.end() && it->second.members == members;
    if (reusable) {
      for (DocId d : members) {
        if (doc_changed_gen_[d] > it->second.generation) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      fine_results[ci] = it->second.result;
      result_generation[ci] = it->second.generation;
      ++stats.reused_clusters;
    } else {
      dirty.push_back(ci);
      ++stats.dirty_clusters;
      stats.dirty_cluster_docs += members.size();
    }
  }
  FineClustering fine(options_.fine);
  ThreadPool::ParallelFor(
      options_.num_threads, dirty.size(), [&](size_t i) {
        const size_t ci = dirty[i];
        fine_results[ci] =
            fine.RunOnCluster(corpus_, components.clusters[ci], cost_model,
                              &doc_top_phrases_);
      });

  // Refresh the cache: every current cluster is stored with the
  // generation its result was computed at (carried over for reused
  // entries so the dirtiness predicate keeps working); vanished
  // clusters drop out.
  fine_cache_.clear();
  fine_cache_.reserve(num_clusters);
  for (size_t ci = 0; ci < num_clusters; ++ci) {
    CachedFine entry;
    entry.members = components.clusters[ci];
    entry.result = fine_results[ci];
    entry.generation = result_generation[ci];
    fine_cache_.emplace(entry.members.front(), std::move(entry));
  }

  // --- assemble, replicating InfoShield::Run's merge loop so the
  // result is field-for-field what the batch pipeline would build.
  InfoShieldResult result;
  result.doc_template.assign(corpus_.size(), -1);
  result.num_coarse_clusters = components.clusters.size();
  result.num_singletons = components.singletons.size();
  result.cluster_stats.reserve(num_clusters);
  size_t total_templates = 0;
  for (const FineResult& fr : fine_results) {
    total_templates += fr.templates.size();
  }
  result.templates.reserve(total_templates);
  result.template_coarse_cluster.reserve(total_templates);
  for (size_t ci = 0; ci < num_clusters; ++ci) {
    FineResult& fr = fine_results[ci];
    result.fine_stats.MergeFrom(fr.stats);

    ClusterStats cluster_stats;
    cluster_stats.coarse_cluster_index = ci;
    cluster_stats.num_docs = components.clusters[ci].size();
    cluster_stats.num_templates = fr.templates.size();
    cluster_stats.cost_before = fr.cost_before;
    cluster_stats.cost_after = fr.cost_after;
    cluster_stats.relative_length = fr.relative_length();
    cluster_stats.lower_bound = RelativeLengthLowerBound(
        std::max<size_t>(fr.templates.size(), 1), cluster_stats.num_docs,
        cost_model.lg_vocab());
    result.cluster_stats.push_back(cluster_stats);

    for (TemplateCluster& tc : fr.templates) {
      const int64_t template_index =
          static_cast<int64_t>(result.templates.size());
      for (DocId d : tc.members) {
        result.doc_template[d] = template_index;
      }
      result.templates.push_back(std::move(tc));
      result.template_coarse_cluster.push_back(ci);
    }
  }
  stats.fine_seconds = timer.ElapsedSeconds();
  result_ = std::move(result);
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
  return stats;
}

Status IncrementalInfoShield::ValidateInvariants() const {
  INFOSHIELD_RETURN_IF_ERROR(df_table_.ValidateInvariants());
  INFOSHIELD_RETURN_IF_ERROR(uf_.ValidateInvariants());
  audit::Auditor a("IncrementalInfoShield");
  const size_t n = corpus_.size();
  a.Expect(doc_top_phrases_.size() == n,
           StrFormat("doc_top_phrases has %zu entries for %zu documents",
                     doc_top_phrases_.size(), n));
  a.Expect(doc_changed_gen_.size() == n,
           StrFormat("doc_changed_gen has %zu entries for %zu documents",
                     doc_changed_gen_.size(), n));
  a.Expect(uf_.num_elements() == n,
           StrFormat("union-find covers %zu elements for %zu documents",
                     uf_.num_elements(), n));
  a.Expect(df_table_.num_documents() == n,
           StrFormat("df table counts %zu documents but the corpus holds "
                     "%zu",
                     df_table_.num_documents(), n));
  const uint64_t generation = df_table_.generation();
  for (size_t d = 0; d < doc_changed_gen_.size(); ++d) {
    if (doc_changed_gen_[d] > generation) {
      a.Expect(false,
               StrFormat("document %zu changed at generation %llu, beyond "
                         "the table's %llu",
                         d,
                         static_cast<unsigned long long>(doc_changed_gen_[d]),
                         static_cast<unsigned long long>(generation)));
    }
  }
  // determinism: validation only; each entry is checked independently.
  for (const auto& [key, entry] : fine_cache_) {
    a.Expect(!entry.members.empty() && entry.members.front() == key,
             StrFormat("cache entry %u does not start with its key", key));
    for (DocId d : entry.members) {
      if (d >= n) {
        a.Expect(false,
                 StrFormat("cache entry %u holds out-of-corpus member %u",
                           key, d));
      }
    }
    a.Expect(entry.generation <= generation,
             StrFormat("cache entry %u computed at generation %llu, beyond "
                       "the table's %llu",
                       key,
                       static_cast<unsigned long long>(entry.generation),
                       static_cast<unsigned long long>(generation)));
  }
  INFOSHIELD_RETURN_IF_ERROR(a.Finish());
  return ValidateInfoShieldResult(result_, corpus_);
}

}  // namespace infoshield
