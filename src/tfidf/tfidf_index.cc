#include "tfidf/tfidf_index.h"

#include <algorithm>
#include <cmath>

#include "tfidf/sharded_counter.h"
#include "util/audit.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace infoshield {

void TfidfIndex::Build(const Corpus& corpus, const TfidfOptions& options,
                       size_t num_threads) {
  options_ = options;
  num_documents_ = corpus.size();
  from_snapshot_ = false;
  snapshot_ = DfSnapshot();
  df_.clear();
  build_stats_ = TfidfBuildStats{};
  const size_t threads = ThreadPool::ResolveNumThreads(num_threads);
  if (threads <= 1 || corpus.size() < 2) {
    // Serial reference path: one global map, one pass.
    std::unordered_map<PhraseHash, uint32_t> seen;
    for (const Document& doc : corpus.docs()) {
      seen.clear();
      for (const NgramSpan& g : ExtractNgrams(doc, options_.max_ngram)) {
        seen.emplace(g.hash, 0);
      }
      // determinism: commutative integer increments; order cannot matter.
      for (const auto& [hash, unused] : seen) {
        ++df_[hash];
      }
    }
  } else {
    // Sharded parallel path: contiguous document chunks fan out across
    // the pool; each worker accumulates per-document-deduplicated
    // counts into a private shard-partitioned map and flushes it
    // shard-wise under the shard mutexes. Counts are a commutative sum,
    // so the merged table equals the serial one for any schedule.
    const size_t n = corpus.size();
    const size_t num_chunks = std::min(n, threads * 4);
    ShardedPhraseCounter counter;
    ThreadPool::ParallelFor(threads, num_chunks, [&](size_t chunk) {
      const size_t begin = chunk * n / num_chunks;
      const size_t end = (chunk + 1) * n / num_chunks;
      ShardedPhraseCounter::Local local;
      std::unordered_map<PhraseHash, uint32_t> seen;
      for (size_t d = begin; d < end; ++d) {
        seen.clear();
        for (const NgramSpan& g :
             ExtractNgrams(corpus.docs()[d], options_.max_ngram)) {
          seen.emplace(g.hash, 0);
        }
        // determinism: commutative integer increments; order cannot
        // matter.
        for (const auto& [hash, unused] : seen) {
          local.Increment(hash);
        }
      }
      counter.Flush(&local);
    });
    counter.Drain(&df_);
    const ShardedPhraseCounter::Stats stats = counter.stats();
    build_stats_.shard_flushes = stats.flushes;
    build_stats_.shard_contended = stats.contended;
  }
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

void TfidfIndex::BuildFromSnapshot(const DfSnapshot& snapshot,
                                   const TfidfOptions& options) {
  options_ = options;
  num_documents_ = snapshot.num_documents();
  from_snapshot_ = true;
  snapshot_ = snapshot;
  df_.clear();
  build_stats_ = TfidfBuildStats{};
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

size_t TfidfIndex::DocumentFrequency(PhraseHash phrase) const {
  if (from_snapshot_) return snapshot_.DocumentFrequency(phrase);
  auto it = df_.find(phrase);
  return it == df_.end() ? 0 : it->second;
}

double TfidfIndex::ScoreWithDf(size_t df, size_t tf) const {
  if (df == 0 || num_documents_ == 0) return 0.0;
  double idf =
      std::log(static_cast<double>(num_documents_) / static_cast<double>(df));
  return static_cast<double>(tf) * idf;
}

double TfidfIndex::Score(PhraseHash phrase, size_t tf) const {
  return ScoreWithDf(DocumentFrequency(phrase), tf);
}

std::vector<ScoredPhrase> TfidfIndex::TopPhrases(const Document& doc) const {
  const size_t min_n = std::min(options_.min_ngram, options_.max_ngram);
  // Count term frequencies of the document's distinct eligible phrases.
  std::unordered_map<PhraseHash, uint32_t> tf;
  for (const NgramSpan& g : ExtractNgrams(doc, options_.max_ngram)) {
    if (g.n < min_n) continue;
    ++tf[g.hash];
  }

  std::vector<ScoredPhrase> scored;
  scored.reserve(tf.size());
  // determinism: unordered gather; `scored` is fully sorted below.
  // One df lookup per phrase: the min_df filter and the score share it
  // (Score(hash, tf) would redo the hash probe).
  for (const auto& [hash, count] : tf) {
    const size_t df = DocumentFrequency(hash);
    if (df < options_.min_df) continue;
    scored.push_back(ScoredPhrase{hash, ScoreWithDf(df, count)});
  }

  // top_fraction applies to the phrases actually eligible after the
  // min_df filter; counting the pre-filter distinct phrases would
  // inflate `keep` and defeat the fraction whenever min_df drops many
  // phrases (with min_df == 1 the two counts coincide).
  size_t keep = static_cast<size_t>(
      std::ceil(options_.top_fraction * static_cast<double>(scored.size())));
  keep = std::max(keep, options_.min_phrases_per_doc);
  keep = std::min(keep, scored.size());

  // Deterministic order: score desc, hash asc as tie-break.
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPhrase& a, const ScoredPhrase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.hash < b.hash;
            });
  scored.resize(keep);
  INFOSHIELD_AUDIT_INVARIANTS(ValidateTopPhrases(scored));
  return scored;
}

Status TfidfIndex::ValidateInvariants() const {
  audit::Auditor a("TfidfIndex");
  a.Expect(options_.top_fraction >= 0.0 && options_.top_fraction <= 1.0,
           StrFormat("top_fraction %.3f outside [0, 1]",
                     options_.top_fraction));
  a.Expect(options_.max_ngram >= 1, "max_ngram is 0");
  if (from_snapshot_) {
    a.Expect(df_.empty(), "snapshot-backed index also owns a df map");
    a.Expect(num_documents_ == snapshot_.num_documents(),
             StrFormat("index says %zu documents but its snapshot says %zu",
                       num_documents_, snapshot_.num_documents()));
    return a.Finish();
  }
  // determinism: validation only; each entry is checked independently.
  for (const auto& [hash, df] : df_) {
    if (df < 1 || df > num_documents_) {
      a.Expect(false,
               StrFormat("phrase %llu has df %u outside [1, %zu]",
                         static_cast<unsigned long long>(hash), df,
                         num_documents_));
    }
  }
  return a.Finish();
}

Status ValidateTopPhrases(const std::vector<ScoredPhrase>& phrases) {
  audit::Auditor a("TopPhrases");
  for (size_t i = 0; i < phrases.size(); ++i) {
    a.Expect(std::isfinite(phrases[i].score),
             StrFormat("phrase #%zu has non-finite score", i));
    if (i == 0) continue;
    const ScoredPhrase& prev = phrases[i - 1];
    const ScoredPhrase& cur = phrases[i];
    a.Expect(prev.score > cur.score ||
                 (prev.score == cur.score && prev.hash < cur.hash),
             StrFormat("phrases #%zu..#%zu out of order or duplicated",
                       i - 1, i));
  }
  return a.Finish();
}

}  // namespace infoshield
