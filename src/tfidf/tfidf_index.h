// Corpus-wide n-gram tf-idf index (paper §IV-A1).
//
// For each (phrase, document) pair, tf-idf = tf * log(N / df). For each
// document, the phrases with the highest tf-idf scores are its "top
// phrases"; the number selected is a fraction of the number of distinct
// phrases in the document (top 10% per Lemma 2's proof), so long and short
// documents are treated uniformly and the method stays domain-independent.
//
// Phrases occurring in only one document are skipped when selecting top
// phrases for clustering: a df-1 phrase cannot connect two documents, so
// skipping it changes no coarse component while keeping the bipartite
// graph small. (The paper's tf-idf already down-weights nothing here —
// df-1 phrases have the *highest* idf — so this is purely the graph-side
// optimization, applied after scoring.)

#ifndef INFOSHIELD_TFIDF_TFIDF_INDEX_H_
#define INFOSHIELD_TFIDF_TFIDF_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/corpus.h"
#include "text/ngram.h"
#include "tfidf/snapshot_df_table.h"
#include "util/status.h"

namespace infoshield {

struct TfidfOptions {
  // Maximum n-gram length (paper: 5; Fig. 4 sweeps 1..8).
  size_t max_ngram = 5;
  // Minimum n-gram length for a phrase to be eligible as a top phrase
  // (clamped to max_ngram internally). A single shared word is weak
  // near-duplicate evidence — any two documents in a large corpus share
  // some rare word, which would percolate the coarse graph into one
  // giant component; a shared phrase of two or more words is the actual
  // signature the paper's "phrases" refer to. Document frequencies are
  // still tracked for all lengths >= 1.
  size_t min_ngram = 2;
  // Fraction of a document's distinct phrases kept as top phrases.
  double top_fraction = 0.10;
  // Every document keeps at least this many top phrases (if it has any
  // eligible phrase at all).
  size_t min_phrases_per_doc = 1;
  // Drop phrases whose document frequency is below this when selecting
  // top phrases (2 = skip phrases that cannot connect documents).
  size_t min_df = 2;
};

struct ScoredPhrase {
  PhraseHash hash;
  double score;
};

// Diagnostics from a sharded (parallel) Build; zeros after a serial one.
struct TfidfBuildStats {
  size_t shard_flushes = 0;
  size_t shard_contended = 0;
};

class TfidfIndex {
 public:
  TfidfIndex() = default;

  // Scans the corpus and builds document-frequency tables. With
  // num_threads > 1 (0 = hardware concurrency) the accumulation is
  // sharded by PhraseHash across a worker pool (sharded_counter.h);
  // because df accumulation is a commutative integer sum, the resulting
  // table is identical to the serial build for any thread count.
  void Build(const Corpus& corpus, const TfidfOptions& options,
             size_t num_threads = 1);

  // Points the index at a frozen df snapshot (snapshot_df_table.h)
  // instead of scanning a corpus: no df maps are copied, so this is
  // O(1). Scoring then reads the snapshot's generation no matter what
  // later ApplyBatch calls do to the underlying table. Because df
  // accumulation is additive, an index built from a snapshot covering
  // documents [0, N) scores byte-identically to Build over those same
  // N documents — the bridge the incremental path's differential oracle
  // rests on.
  void BuildFromSnapshot(const DfSnapshot& snapshot,
                         const TfidfOptions& options);

  // Document frequency of a phrase (0 if unseen).
  size_t DocumentFrequency(PhraseHash phrase) const;

  // The top phrases of one document by tf-idf, best first.
  std::vector<ScoredPhrase> TopPhrases(const Document& doc) const;

  // tf-idf score of a phrase occurring `tf` times in one document.
  double Score(PhraseHash phrase, size_t tf) const;

  size_t num_documents() const { return num_documents_; }
  size_t num_phrases() const {
    return from_snapshot_ ? snapshot_.num_phrases() : df_.size();
  }
  const TfidfOptions& options() const { return options_; }
  const TfidfBuildStats& build_stats() const { return build_stats_; }

  // Deep invariant audit (util/audit.h): every document frequency lies in
  // [1, num_documents] and the stored options are sane. Returns OK or an
  // Internal status listing every violation.
  Status ValidateInvariants() const;

 private:
  // tf-idf for a phrase whose df lookup the caller already did —
  // TopPhrases' inner loop needs the df twice (min_df filter, then the
  // score) and must not pay the hash lookup twice.
  double ScoreWithDf(size_t df, size_t tf) const;

  TfidfOptions options_;
  size_t num_documents_ = 0;
  TfidfBuildStats build_stats_;
  // Exactly one df source is active: the owned map (after Build) or the
  // frozen snapshot (after BuildFromSnapshot).
  bool from_snapshot_ = false;
  std::unordered_map<PhraseHash, uint32_t> df_;
  DfSnapshot snapshot_;
};

// Audits a TopPhrases result: scores are finite, the list is sorted by
// score descending (hash ascending on ties) and contains no duplicate
// phrase hash.
Status ValidateTopPhrases(const std::vector<ScoredPhrase>& phrases);

}  // namespace infoshield

#endif  // INFOSHIELD_TFIDF_TFIDF_INDEX_H_
