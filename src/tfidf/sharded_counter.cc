#include "tfidf/sharded_counter.h"

namespace infoshield {

void ShardedPhraseCounter::Flush(Local* local) {
  size_t flushes = 0;
  size_t contended = 0;
  for (size_t s = 0; s < kNumShards; ++s) {
    auto& pending = local->maps_[s];
    if (pending.empty()) continue;
    ++flushes;
    Shard& shard = shards_[s];
    if (!shard.mu.TryLock()) {
      ++contended;
      shard.mu.Lock();
    }
    // determinism: commutative integer sums into a count map; neither
    // the flush order nor this iteration order can change the totals.
    for (const auto& [hash, count] : pending) {
      shard.counts[hash] += count;
    }
    shard.mu.Unlock();
    pending.clear();
  }
  MutexLock lock(&stats_mu_);
  stats_.flushes += flushes;
  stats_.contended += contended;
}

void ShardedPhraseCounter::Drain(
    std::unordered_map<PhraseHash, uint32_t>* out) {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    // determinism: commutative integer sums into a count map; the
    // drain order cannot change the totals.
    for (const auto& [hash, count] : shard.counts) {
      (*out)[hash] += count;
    }
    shard.counts.clear();
  }
}

ShardedPhraseCounter::Stats ShardedPhraseCounter::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace infoshield
