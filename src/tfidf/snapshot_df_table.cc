#include "tfidf/snapshot_df_table.h"

#include <utility>

#include "util/audit.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infoshield {

DfSnapshot SnapshotDfTable::Snapshot() const {
  MutexLock lock(&mu_);
  DfSnapshot snap;
  snap.shards_ = shards_;
  snap.num_documents_ = num_documents_;
  snap.num_phrases_ = num_phrases_;
  snap.generation_ = generation_;
  return snap;
}

void SnapshotDfTable::ApplyBatch(ShardedPhraseCounter::Local* local,
                                 size_t num_new_documents) {
  // Copy-on-write fold-in: untouched shards keep their pointer (shared
  // with every live snapshot); touched shards are cloned, updated, and
  // swapped. Readers holding a DfSnapshot keep the old maps alive via
  // their shared_ptrs, so nothing they can see ever mutates. Writers are
  // expected to be serialized by the caller (IncrementalInfoShield runs
  // one ingest at a time); mu_ still makes concurrent ApplyBatch safe,
  // just not fast.
  size_t phrase_delta = 0;
  {
    MutexLock lock(&mu_);
    for (size_t s = 0; s < ShardedPhraseCounter::kNumShards; ++s) {
      if (local->maps_[s].empty()) continue;
      auto clone = shards_[s] == nullptr
                       ? std::make_shared<ShardMap>()
                       : std::make_shared<ShardMap>(*shards_[s]);
      // determinism: commutative integer increments; order cannot matter.
      for (const auto& [hash, count] : local->maps_[s]) {
        auto [it, inserted] = clone->emplace(hash, count);
        if (inserted) {
          ++phrase_delta;
        } else {
          it->second += count;
        }
      }
      shards_[s] = std::move(clone);
      local->maps_[s].clear();
    }
    num_documents_ += num_new_documents;
    num_phrases_ += phrase_delta;
    ++generation_;
  }
  INFOSHIELD_AUDIT_INVARIANTS(ValidateInvariants());
}

size_t SnapshotDfTable::num_documents() const {
  MutexLock lock(&mu_);
  return num_documents_;
}

uint64_t SnapshotDfTable::generation() const {
  MutexLock lock(&mu_);
  return generation_;
}

Status SnapshotDfTable::ValidateInvariants() const {
  const DfSnapshot snap = Snapshot();
  audit::Auditor a("SnapshotDfTable");
  size_t total_phrases = 0;
  for (size_t s = 0; s < ShardedPhraseCounter::kNumShards; ++s) {
    const DfSnapshot::ShardMap* shard = snap.shards_[s].get();
    if (shard == nullptr) continue;
    total_phrases += shard->size();
    // determinism: validation only; each entry is checked independently.
    for (const auto& [hash, df] : *shard) {
      if (ShardedPhraseCounter::ShardOf(hash) != s) {
        a.Expect(false,
                 StrFormat("phrase %llu stored in shard %zu but hashes to "
                           "shard %zu",
                           static_cast<unsigned long long>(hash), s,
                           ShardedPhraseCounter::ShardOf(hash)));
      }
      if (df < 1 || df > snap.num_documents()) {
        a.Expect(false,
                 StrFormat("phrase %llu has df %u outside [1, %zu]",
                           static_cast<unsigned long long>(hash), df,
                           snap.num_documents()));
      }
    }
  }
  a.Expect(total_phrases == snap.num_phrases(),
           StrFormat("cached num_phrases %zu but shards hold %zu",
                     snap.num_phrases(), total_phrases));
  return a.Finish();
}

}  // namespace infoshield
