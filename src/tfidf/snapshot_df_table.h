// Versioned document-frequency store with copy-on-write snapshots — the
// df side of the incremental ingestion core (DESIGN.md §15).
//
// The batch pipeline rebuilds its df table from scratch every run. The
// incremental path instead keeps one long-lived SnapshotDfTable: each
// IngestBatch accumulates the new documents' per-document-deduplicated
// phrase counts into a ShardedPhraseCounter::Local (the same delta
// buffer the parallel coarse build uses) and folds it in with
// ApplyBatch. Because df accumulation is a commutative integer sum,
// the folded table is byte-identical to a from-scratch build over the
// concatenated corpus — that additivity is what makes the incremental
// path's differential oracle (exact JSON match vs. a fresh batch run)
// attainable at all.
//
// Snapshots are structural-sharing copies: the table holds 64 immutable
// shard maps behind shared_ptr<const ...> (same hash partition as
// ShardedPhraseCounter), and Snapshot() copies 64 pointers under the
// mutex. ApplyBatch clones only the shards the batch actually touches
// and swaps the pointers, so a reader holding a DfSnapshot keeps
// scoring against its frozen generation no matter how many batches land
// concurrently. Readers never lock; the writer locks only for the
// pointer swap.

#ifndef INFOSHIELD_TFIDF_SNAPSHOT_DF_TABLE_H_
#define INFOSHIELD_TFIDF_SNAPSHOT_DF_TABLE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "text/ngram.h"
#include "tfidf/sharded_counter.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace infoshield {

// An immutable view of the df table as of one generation. Cheap to copy
// (64 shared_ptrs + counters) and safe to read from any thread with no
// synchronization: the shard maps it points at are never mutated.
class DfSnapshot {
 public:
  // A default snapshot is generation 0 of an empty table.
  DfSnapshot() = default;

  // Document frequency of a phrase as of this snapshot (0 if unseen).
  size_t DocumentFrequency(PhraseHash phrase) const {
    const ShardMap* shard =
        shards_[ShardedPhraseCounter::ShardOf(phrase)].get();
    if (shard == nullptr) return 0;
    auto it = shard->find(phrase);
    return it == shard->end() ? 0 : it->second;
  }

  // Number of documents folded in as of this snapshot (the N in idf).
  size_t num_documents() const { return num_documents_; }

  // Distinct phrases across all shards.
  size_t num_phrases() const { return num_phrases_; }

  // Monotone version counter: 0 for the empty table, +1 per ApplyBatch.
  uint64_t generation() const { return generation_; }

 private:
  friend class SnapshotDfTable;

  using ShardMap = std::unordered_map<PhraseHash, uint32_t>;

  std::array<std::shared_ptr<const ShardMap>, ShardedPhraseCounter::kNumShards>
      shards_;
  size_t num_documents_ = 0;
  size_t num_phrases_ = 0;
  uint64_t generation_ = 0;
};

class SnapshotDfTable {
 public:
  SnapshotDfTable() = default;

  SnapshotDfTable(const SnapshotDfTable&) = delete;
  SnapshotDfTable& operator=(const SnapshotDfTable&) = delete;

  // The current generation's frozen view. Thread-safe and cheap; the
  // returned snapshot stays valid (and unchanged) forever.
  DfSnapshot Snapshot() const;

  // Folds a batch's df delta into the table: clones each shard `local`
  // touches, adds the counts, swaps the pointers, advances the
  // generation by one, and adds `num_new_documents` to the document
  // count. Clears `local`. Existing snapshots are unaffected.
  //
  // `local` must hold per-document-deduplicated counts (each document
  // contributes at most 1 per phrase), exactly as the tf-idf build
  // accumulates them.
  void ApplyBatch(ShardedPhraseCounter::Local* local,
                  size_t num_new_documents);

  size_t num_documents() const;
  uint64_t generation() const;

  // Deep invariant audit (util/audit.h): every shard pointer that was
  // ever materialized hashes its phrases into that shard, every df lies
  // in [1, num_documents], and the cached num_phrases matches the sum
  // of shard sizes. Returns OK or an Internal status listing every
  // violation.
  Status ValidateInvariants() const;

 private:
  using ShardMap = DfSnapshot::ShardMap;

  mutable Mutex mu_;
  std::array<std::shared_ptr<const ShardMap>, ShardedPhraseCounter::kNumShards>
      shards_ GUARDED_BY(mu_);
  size_t num_documents_ GUARDED_BY(mu_) = 0;
  size_t num_phrases_ GUARDED_BY(mu_) = 0;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
};

}  // namespace infoshield

#endif  // INFOSHIELD_TFIDF_SNAPSHOT_DF_TABLE_H_
