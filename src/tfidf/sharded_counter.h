// Sharded concurrent phrase-count accumulator for the parallel coarse
// stage (DESIGN.md §11).
//
// Document-frequency accumulation is a giant commutative integer sum
// keyed by PhraseHash. The serial build uses one global unordered_map;
// at corpus scale that map is the coarse stage's contention point, so
// the parallel build shards it by hash: each worker accumulates into a
// private, shard-partitioned map (no locks at all on the hot path) and
// flushes shard-by-shard under that shard's Mutex. Because integer
// addition commutes, the merged counts are identical to the serial
// map's for any thread count, flush order, or scheduling — which is
// what lets the parallel coarse pipeline promise byte-identical output.
//
// Shard selection uses the hash's top bits: unordered_map buckets key
// off the low bits, so this keeps the two partitions independent.

#ifndef INFOSHIELD_TFIDF_SHARDED_COUNTER_H_
#define INFOSHIELD_TFIDF_SHARDED_COUNTER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "text/ngram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace infoshield {

class SnapshotDfTable;

class ShardedPhraseCounter {
 public:
  // Power of two so ShardOf is a shift+mask. 64 shards keep the
  // collision probability of two workers flushing the same shard low
  // even at high thread counts, at negligible memory cost.
  static constexpr size_t kNumShards = 64;

  static constexpr size_t ShardOf(PhraseHash hash) {
    return static_cast<size_t>(hash >> 58) & (kNumShards - 1);
  }

  // Merge diagnostics: how many per-shard flushes ran, and how many of
  // them found the shard lock already held by another worker (a direct
  // measure of shard contention).
  struct Stats {
    size_t flushes = 0;
    size_t contended = 0;
  };

  // A worker's private accumulator, pre-partitioned by shard so a flush
  // takes each shard lock exactly once. Not thread-safe: one Local per
  // worker.
  class Local {
   public:
    void Increment(PhraseHash hash) { ++maps_[ShardOf(hash)][hash]; }

    bool empty() const {
      // determinism: emptiness probe only; no element order observed.
      for (const auto& m : maps_) {
        if (!m.empty()) return false;
      }
      return true;
    }

   private:
    friend class ShardedPhraseCounter;
    // SnapshotDfTable::ApplyBatch consumes a Local as its batch df-delta
    // buffer (snapshot_df_table.h) — same shard partition, same
    // commutative-sum merge, just folded into copy-on-write shards
    // instead of locked ones.
    friend class SnapshotDfTable;
    std::array<std::unordered_map<PhraseHash, uint32_t>, kNumShards> maps_;
  };

  ShardedPhraseCounter() = default;

  ShardedPhraseCounter(const ShardedPhraseCounter&) = delete;
  ShardedPhraseCounter& operator=(const ShardedPhraseCounter&) = delete;

  // Adds every count in `local` into the shared shards (shard-wise, each
  // under its Mutex) and clears `local`. Safe to call concurrently from
  // any number of workers.
  void Flush(Local* local);

  // Moves the merged counts into `*out` (added to whatever it holds).
  // Call only after every worker's final Flush has returned.
  void Drain(std::unordered_map<PhraseHash, uint32_t>* out);

  Stats stats() const;

 private:
  struct Shard {
    Mutex mu;
    std::unordered_map<PhraseHash, uint32_t> counts GUARDED_BY(mu);
  };

  std::array<Shard, kNumShards> shards_;

  mutable Mutex stats_mu_;
  Stats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace infoshield

#endif  // INFOSHIELD_TFIDF_SHARDED_COUNTER_H_
