
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/infoshield_cli.cc" "tools/CMakeFiles/infoshield_cli.dir/infoshield_cli.cc.o" "gcc" "tools/CMakeFiles/infoshield_cli.dir/infoshield_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/infoshield_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_coarse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_tfidf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
