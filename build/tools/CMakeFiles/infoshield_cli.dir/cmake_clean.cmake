file(REMOVE_RECURSE
  "CMakeFiles/infoshield_cli.dir/infoshield_cli.cc.o"
  "CMakeFiles/infoshield_cli.dir/infoshield_cli.cc.o.d"
  "infoshield"
  "infoshield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
