# Empty compiler generated dependencies file for infoshield_cli.
# This may be replaced when dependencies are built.
