# Empty dependencies file for bench_tables_toy.
# This may be replaced when dependencies are built.
