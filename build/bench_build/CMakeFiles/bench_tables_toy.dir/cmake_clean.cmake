file(REMOVE_RECURSE
  "../bench/bench_tables_toy"
  "../bench/bench_tables_toy.pdb"
  "CMakeFiles/bench_tables_toy.dir/bench_tables_toy.cc.o"
  "CMakeFiles/bench_tables_toy.dir/bench_tables_toy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
