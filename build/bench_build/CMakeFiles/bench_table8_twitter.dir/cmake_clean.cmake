file(REMOVE_RECURSE
  "../bench/bench_table8_twitter"
  "../bench/bench_table8_twitter.pdb"
  "CMakeFiles/bench_table8_twitter.dir/bench_table8_twitter.cc.o"
  "CMakeFiles/bench_table8_twitter.dir/bench_table8_twitter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_twitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
