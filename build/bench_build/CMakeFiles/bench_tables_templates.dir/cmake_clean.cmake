file(REMOVE_RECURSE
  "../bench/bench_tables_templates"
  "../bench/bench_tables_templates.pdb"
  "CMakeFiles/bench_tables_templates.dir/bench_tables_templates.cc.o"
  "CMakeFiles/bench_tables_templates.dir/bench_tables_templates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
