# Empty compiler generated dependencies file for bench_fig3_relative_length.
# This may be replaced when dependencies are built.
