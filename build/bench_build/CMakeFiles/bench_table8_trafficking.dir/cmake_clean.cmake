file(REMOVE_RECURSE
  "../bench/bench_table8_trafficking"
  "../bench/bench_table8_trafficking.pdb"
  "CMakeFiles/bench_table8_trafficking.dir/bench_table8_trafficking.cc.o"
  "CMakeFiles/bench_table8_trafficking.dir/bench_table8_trafficking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_trafficking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
