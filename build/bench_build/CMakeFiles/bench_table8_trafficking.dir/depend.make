# Empty dependencies file for bench_table8_trafficking.
# This may be replaced when dependencies are built.
