# Empty compiler generated dependencies file for bench_fig4_ngram_robustness.
# This may be replaced when dependencies are built.
