file(REMOVE_RECURSE
  "../bench/bench_fig4_ngram_robustness"
  "../bench/bench_fig4_ngram_robustness.pdb"
  "CMakeFiles/bench_fig4_ngram_robustness.dir/bench_fig4_ngram_robustness.cc.o"
  "CMakeFiles/bench_fig4_ngram_robustness.dir/bench_fig4_ngram_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ngram_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
