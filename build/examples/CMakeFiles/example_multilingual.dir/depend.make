# Empty dependencies file for example_multilingual.
# This may be replaced when dependencies are built.
