file(REMOVE_RECURSE
  "CMakeFiles/example_multilingual.dir/multilingual.cpp.o"
  "CMakeFiles/example_multilingual.dir/multilingual.cpp.o.d"
  "multilingual"
  "multilingual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multilingual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
