# Empty dependencies file for example_trafficking_clusters.
# This may be replaced when dependencies are built.
