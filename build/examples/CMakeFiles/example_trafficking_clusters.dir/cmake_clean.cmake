file(REMOVE_RECURSE
  "CMakeFiles/example_trafficking_clusters.dir/trafficking_clusters.cpp.o"
  "CMakeFiles/example_trafficking_clusters.dir/trafficking_clusters.cpp.o.d"
  "trafficking_clusters"
  "trafficking_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trafficking_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
