file(REMOVE_RECURSE
  "CMakeFiles/example_plagiarism.dir/plagiarism.cpp.o"
  "CMakeFiles/example_plagiarism.dir/plagiarism.cpp.o.d"
  "plagiarism"
  "plagiarism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_plagiarism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
