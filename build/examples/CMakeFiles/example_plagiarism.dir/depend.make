# Empty dependencies file for example_plagiarism.
# This may be replaced when dependencies are built.
