# Empty compiler generated dependencies file for example_twitter_bot_detection.
# This may be replaced when dependencies are built.
