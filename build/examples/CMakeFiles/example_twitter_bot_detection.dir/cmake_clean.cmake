file(REMOVE_RECURSE
  "CMakeFiles/example_twitter_bot_detection.dir/twitter_bot_detection.cpp.o"
  "CMakeFiles/example_twitter_bot_detection.dir/twitter_bot_detection.cpp.o.d"
  "twitter_bot_detection"
  "twitter_bot_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_twitter_bot_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
