file(REMOVE_RECURSE
  "libinfoshield_coarse.a"
)
