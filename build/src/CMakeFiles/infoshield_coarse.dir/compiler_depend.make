# Empty compiler generated dependencies file for infoshield_coarse.
# This may be replaced when dependencies are built.
