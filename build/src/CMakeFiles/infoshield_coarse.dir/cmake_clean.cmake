file(REMOVE_RECURSE
  "CMakeFiles/infoshield_coarse.dir/coarse/coarse_clustering.cc.o"
  "CMakeFiles/infoshield_coarse.dir/coarse/coarse_clustering.cc.o.d"
  "libinfoshield_coarse.a"
  "libinfoshield_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
