# Empty compiler generated dependencies file for infoshield_util.
# This may be replaced when dependencies are built.
