file(REMOVE_RECURSE
  "libinfoshield_util.a"
)
