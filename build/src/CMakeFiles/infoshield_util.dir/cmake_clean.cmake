file(REMOVE_RECURSE
  "CMakeFiles/infoshield_util.dir/util/flags.cc.o"
  "CMakeFiles/infoshield_util.dir/util/flags.cc.o.d"
  "CMakeFiles/infoshield_util.dir/util/logging.cc.o"
  "CMakeFiles/infoshield_util.dir/util/logging.cc.o.d"
  "CMakeFiles/infoshield_util.dir/util/random.cc.o"
  "CMakeFiles/infoshield_util.dir/util/random.cc.o.d"
  "CMakeFiles/infoshield_util.dir/util/status.cc.o"
  "CMakeFiles/infoshield_util.dir/util/status.cc.o.d"
  "CMakeFiles/infoshield_util.dir/util/string_util.cc.o"
  "CMakeFiles/infoshield_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/infoshield_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/infoshield_util.dir/util/thread_pool.cc.o.d"
  "libinfoshield_util.a"
  "libinfoshield_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
