# Empty dependencies file for infoshield_msa.
# This may be replaced when dependencies are built.
