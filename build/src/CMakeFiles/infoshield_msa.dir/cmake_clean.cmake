file(REMOVE_RECURSE
  "CMakeFiles/infoshield_msa.dir/msa/pairwise.cc.o"
  "CMakeFiles/infoshield_msa.dir/msa/pairwise.cc.o.d"
  "CMakeFiles/infoshield_msa.dir/msa/poa.cc.o"
  "CMakeFiles/infoshield_msa.dir/msa/poa.cc.o.d"
  "CMakeFiles/infoshield_msa.dir/msa/profile_msa.cc.o"
  "CMakeFiles/infoshield_msa.dir/msa/profile_msa.cc.o.d"
  "libinfoshield_msa.a"
  "libinfoshield_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
