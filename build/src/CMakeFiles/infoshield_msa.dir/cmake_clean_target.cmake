file(REMOVE_RECURSE
  "libinfoshield_msa.a"
)
