file(REMOVE_RECURSE
  "CMakeFiles/infoshield_datagen.dir/datagen/plagiarism_gen.cc.o"
  "CMakeFiles/infoshield_datagen.dir/datagen/plagiarism_gen.cc.o.d"
  "CMakeFiles/infoshield_datagen.dir/datagen/trafficking_gen.cc.o"
  "CMakeFiles/infoshield_datagen.dir/datagen/trafficking_gen.cc.o.d"
  "CMakeFiles/infoshield_datagen.dir/datagen/twitter_gen.cc.o"
  "CMakeFiles/infoshield_datagen.dir/datagen/twitter_gen.cc.o.d"
  "CMakeFiles/infoshield_datagen.dir/datagen/wordlists.cc.o"
  "CMakeFiles/infoshield_datagen.dir/datagen/wordlists.cc.o.d"
  "libinfoshield_datagen.a"
  "libinfoshield_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
