
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/plagiarism_gen.cc" "src/CMakeFiles/infoshield_datagen.dir/datagen/plagiarism_gen.cc.o" "gcc" "src/CMakeFiles/infoshield_datagen.dir/datagen/plagiarism_gen.cc.o.d"
  "/root/repo/src/datagen/trafficking_gen.cc" "src/CMakeFiles/infoshield_datagen.dir/datagen/trafficking_gen.cc.o" "gcc" "src/CMakeFiles/infoshield_datagen.dir/datagen/trafficking_gen.cc.o.d"
  "/root/repo/src/datagen/twitter_gen.cc" "src/CMakeFiles/infoshield_datagen.dir/datagen/twitter_gen.cc.o" "gcc" "src/CMakeFiles/infoshield_datagen.dir/datagen/twitter_gen.cc.o.d"
  "/root/repo/src/datagen/wordlists.cc" "src/CMakeFiles/infoshield_datagen.dir/datagen/wordlists.cc.o" "gcc" "src/CMakeFiles/infoshield_datagen.dir/datagen/wordlists.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/infoshield_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
