# Empty compiler generated dependencies file for infoshield_datagen.
# This may be replaced when dependencies are built.
