file(REMOVE_RECURSE
  "libinfoshield_datagen.a"
)
