file(REMOVE_RECURSE
  "libinfoshield_baselines.a"
)
