file(REMOVE_RECURSE
  "CMakeFiles/infoshield_baselines.dir/baselines/dbscan.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/dbscan.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/doc2vec.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/doc2vec.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/embedding.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/embedding.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/fasttext.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/fasttext.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/gmeans.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/gmeans.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/hdbscan.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/hdbscan.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/kmeans.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/kmeans.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/logreg.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/logreg.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/optics.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/optics.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/pipeline.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/pipeline.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/template_matching.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/template_matching.cc.o.d"
  "CMakeFiles/infoshield_baselines.dir/baselines/word2vec.cc.o"
  "CMakeFiles/infoshield_baselines.dir/baselines/word2vec.cc.o.d"
  "libinfoshield_baselines.a"
  "libinfoshield_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
