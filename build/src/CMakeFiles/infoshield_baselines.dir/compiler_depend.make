# Empty compiler generated dependencies file for infoshield_baselines.
# This may be replaced when dependencies are built.
