
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dbscan.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/dbscan.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/dbscan.cc.o.d"
  "/root/repo/src/baselines/doc2vec.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/doc2vec.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/doc2vec.cc.o.d"
  "/root/repo/src/baselines/embedding.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/embedding.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/embedding.cc.o.d"
  "/root/repo/src/baselines/fasttext.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/fasttext.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/fasttext.cc.o.d"
  "/root/repo/src/baselines/gmeans.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/gmeans.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/gmeans.cc.o.d"
  "/root/repo/src/baselines/hdbscan.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/hdbscan.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/hdbscan.cc.o.d"
  "/root/repo/src/baselines/kmeans.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/kmeans.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/kmeans.cc.o.d"
  "/root/repo/src/baselines/logreg.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/logreg.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/logreg.cc.o.d"
  "/root/repo/src/baselines/optics.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/optics.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/optics.cc.o.d"
  "/root/repo/src/baselines/pipeline.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/pipeline.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/pipeline.cc.o.d"
  "/root/repo/src/baselines/template_matching.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/template_matching.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/template_matching.cc.o.d"
  "/root/repo/src/baselines/word2vec.cc" "src/CMakeFiles/infoshield_baselines.dir/baselines/word2vec.cc.o" "gcc" "src/CMakeFiles/infoshield_baselines.dir/baselines/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/infoshield_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
