# Empty compiler generated dependencies file for infoshield_graph.
# This may be replaced when dependencies are built.
