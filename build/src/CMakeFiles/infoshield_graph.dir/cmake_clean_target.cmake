file(REMOVE_RECURSE
  "libinfoshield_graph.a"
)
