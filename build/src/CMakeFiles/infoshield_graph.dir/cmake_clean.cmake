file(REMOVE_RECURSE
  "CMakeFiles/infoshield_graph.dir/graph/connected_components.cc.o"
  "CMakeFiles/infoshield_graph.dir/graph/connected_components.cc.o.d"
  "CMakeFiles/infoshield_graph.dir/graph/union_find.cc.o"
  "CMakeFiles/infoshield_graph.dir/graph/union_find.cc.o.d"
  "libinfoshield_graph.a"
  "libinfoshield_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
