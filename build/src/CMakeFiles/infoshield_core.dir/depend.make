# Empty dependencies file for infoshield_core.
# This may be replaced when dependencies are built.
