file(REMOVE_RECURSE
  "CMakeFiles/infoshield_core.dir/core/fine_clustering.cc.o"
  "CMakeFiles/infoshield_core.dir/core/fine_clustering.cc.o.d"
  "CMakeFiles/infoshield_core.dir/core/infoshield.cc.o"
  "CMakeFiles/infoshield_core.dir/core/infoshield.cc.o.d"
  "CMakeFiles/infoshield_core.dir/core/ranking.cc.o"
  "CMakeFiles/infoshield_core.dir/core/ranking.cc.o.d"
  "CMakeFiles/infoshield_core.dir/core/slot_analysis.cc.o"
  "CMakeFiles/infoshield_core.dir/core/slot_analysis.cc.o.d"
  "CMakeFiles/infoshield_core.dir/core/template.cc.o"
  "CMakeFiles/infoshield_core.dir/core/template.cc.o.d"
  "CMakeFiles/infoshield_core.dir/core/visualize.cc.o"
  "CMakeFiles/infoshield_core.dir/core/visualize.cc.o.d"
  "libinfoshield_core.a"
  "libinfoshield_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
