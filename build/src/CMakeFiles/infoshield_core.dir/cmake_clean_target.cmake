file(REMOVE_RECURSE
  "libinfoshield_core.a"
)
