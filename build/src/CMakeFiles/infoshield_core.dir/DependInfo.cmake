
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fine_clustering.cc" "src/CMakeFiles/infoshield_core.dir/core/fine_clustering.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/fine_clustering.cc.o.d"
  "/root/repo/src/core/infoshield.cc" "src/CMakeFiles/infoshield_core.dir/core/infoshield.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/infoshield.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/CMakeFiles/infoshield_core.dir/core/ranking.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/ranking.cc.o.d"
  "/root/repo/src/core/slot_analysis.cc" "src/CMakeFiles/infoshield_core.dir/core/slot_analysis.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/slot_analysis.cc.o.d"
  "/root/repo/src/core/template.cc" "src/CMakeFiles/infoshield_core.dir/core/template.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/template.cc.o.d"
  "/root/repo/src/core/visualize.cc" "src/CMakeFiles/infoshield_core.dir/core/visualize.cc.o" "gcc" "src/CMakeFiles/infoshield_core.dir/core/visualize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/infoshield_coarse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_tfidf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
