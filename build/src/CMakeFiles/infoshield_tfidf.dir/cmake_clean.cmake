file(REMOVE_RECURSE
  "CMakeFiles/infoshield_tfidf.dir/tfidf/tfidf_index.cc.o"
  "CMakeFiles/infoshield_tfidf.dir/tfidf/tfidf_index.cc.o.d"
  "libinfoshield_tfidf.a"
  "libinfoshield_tfidf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_tfidf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
