file(REMOVE_RECURSE
  "libinfoshield_tfidf.a"
)
