# Empty dependencies file for infoshield_tfidf.
# This may be replaced when dependencies are built.
