# Empty dependencies file for infoshield_eval.
# This may be replaced when dependencies are built.
