file(REMOVE_RECURSE
  "CMakeFiles/infoshield_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/infoshield_eval.dir/eval/metrics.cc.o.d"
  "libinfoshield_eval.a"
  "libinfoshield_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
