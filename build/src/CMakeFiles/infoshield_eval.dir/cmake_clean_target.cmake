file(REMOVE_RECURSE
  "libinfoshield_eval.a"
)
