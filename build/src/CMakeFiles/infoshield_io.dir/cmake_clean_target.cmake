file(REMOVE_RECURSE
  "libinfoshield_io.a"
)
