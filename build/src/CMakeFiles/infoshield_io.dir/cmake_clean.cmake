file(REMOVE_RECURSE
  "CMakeFiles/infoshield_io.dir/io/csv.cc.o"
  "CMakeFiles/infoshield_io.dir/io/csv.cc.o.d"
  "CMakeFiles/infoshield_io.dir/io/json_writer.cc.o"
  "CMakeFiles/infoshield_io.dir/io/json_writer.cc.o.d"
  "libinfoshield_io.a"
  "libinfoshield_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
