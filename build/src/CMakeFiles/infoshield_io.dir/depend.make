# Empty dependencies file for infoshield_io.
# This may be replaced when dependencies are built.
