file(REMOVE_RECURSE
  "CMakeFiles/infoshield_text.dir/text/corpus.cc.o"
  "CMakeFiles/infoshield_text.dir/text/corpus.cc.o.d"
  "CMakeFiles/infoshield_text.dir/text/ngram.cc.o"
  "CMakeFiles/infoshield_text.dir/text/ngram.cc.o.d"
  "CMakeFiles/infoshield_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/infoshield_text.dir/text/tokenizer.cc.o.d"
  "CMakeFiles/infoshield_text.dir/text/vocabulary.cc.o"
  "CMakeFiles/infoshield_text.dir/text/vocabulary.cc.o.d"
  "libinfoshield_text.a"
  "libinfoshield_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
