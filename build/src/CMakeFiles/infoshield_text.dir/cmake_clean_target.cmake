file(REMOVE_RECURSE
  "libinfoshield_text.a"
)
