# Empty compiler generated dependencies file for infoshield_text.
# This may be replaced when dependencies are built.
