file(REMOVE_RECURSE
  "CMakeFiles/infoshield_mdl.dir/mdl/cost_model.cc.o"
  "CMakeFiles/infoshield_mdl.dir/mdl/cost_model.cc.o.d"
  "CMakeFiles/infoshield_mdl.dir/mdl/universal_code.cc.o"
  "CMakeFiles/infoshield_mdl.dir/mdl/universal_code.cc.o.d"
  "libinfoshield_mdl.a"
  "libinfoshield_mdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infoshield_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
