file(REMOVE_RECURSE
  "libinfoshield_mdl.a"
)
