# Empty dependencies file for infoshield_mdl.
# This may be replaced when dependencies are built.
