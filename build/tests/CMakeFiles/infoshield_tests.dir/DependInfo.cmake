
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coarse_clustering_test.cc" "tests/CMakeFiles/infoshield_tests.dir/coarse_clustering_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/coarse_clustering_test.cc.o.d"
  "/root/repo/tests/connected_components_test.cc" "tests/CMakeFiles/infoshield_tests.dir/connected_components_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/connected_components_test.cc.o.d"
  "/root/repo/tests/corpus_test.cc" "tests/CMakeFiles/infoshield_tests.dir/corpus_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/corpus_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/infoshield_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/infoshield_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/infoshield_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/dbscan_test.cc" "tests/CMakeFiles/infoshield_tests.dir/dbscan_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/dbscan_test.cc.o.d"
  "/root/repo/tests/doc2vec_test.cc" "tests/CMakeFiles/infoshield_tests.dir/doc2vec_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/doc2vec_test.cc.o.d"
  "/root/repo/tests/fasttext_test.cc" "tests/CMakeFiles/infoshield_tests.dir/fasttext_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/fasttext_test.cc.o.d"
  "/root/repo/tests/fine_clustering_test.cc" "tests/CMakeFiles/infoshield_tests.dir/fine_clustering_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/fine_clustering_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/infoshield_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/gmeans_test.cc" "tests/CMakeFiles/infoshield_tests.dir/gmeans_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/gmeans_test.cc.o.d"
  "/root/repo/tests/hdbscan_test.cc" "tests/CMakeFiles/infoshield_tests.dir/hdbscan_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/hdbscan_test.cc.o.d"
  "/root/repo/tests/infoshield_integration_test.cc" "tests/CMakeFiles/infoshield_tests.dir/infoshield_integration_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/infoshield_integration_test.cc.o.d"
  "/root/repo/tests/json_writer_test.cc" "tests/CMakeFiles/infoshield_tests.dir/json_writer_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/json_writer_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/infoshield_tests.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/infoshield_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/logreg_test.cc" "tests/CMakeFiles/infoshield_tests.dir/logreg_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/logreg_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/infoshield_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/ngram_test.cc" "tests/CMakeFiles/infoshield_tests.dir/ngram_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/ngram_test.cc.o.d"
  "/root/repo/tests/optics_test.cc" "tests/CMakeFiles/infoshield_tests.dir/optics_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/optics_test.cc.o.d"
  "/root/repo/tests/pairwise_test.cc" "tests/CMakeFiles/infoshield_tests.dir/pairwise_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/pairwise_test.cc.o.d"
  "/root/repo/tests/pipeline_property_test.cc" "tests/CMakeFiles/infoshield_tests.dir/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/pipeline_property_test.cc.o.d"
  "/root/repo/tests/plagiarism_gen_test.cc" "tests/CMakeFiles/infoshield_tests.dir/plagiarism_gen_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/plagiarism_gen_test.cc.o.d"
  "/root/repo/tests/poa_test.cc" "tests/CMakeFiles/infoshield_tests.dir/poa_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/poa_test.cc.o.d"
  "/root/repo/tests/profile_msa_test.cc" "tests/CMakeFiles/infoshield_tests.dir/profile_msa_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/profile_msa_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/infoshield_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/ranking_test.cc" "tests/CMakeFiles/infoshield_tests.dir/ranking_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/ranking_test.cc.o.d"
  "/root/repo/tests/slot_analysis_test.cc" "tests/CMakeFiles/infoshield_tests.dir/slot_analysis_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/slot_analysis_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/infoshield_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/string_util_test.cc" "tests/CMakeFiles/infoshield_tests.dir/string_util_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/string_util_test.cc.o.d"
  "/root/repo/tests/template_matching_test.cc" "tests/CMakeFiles/infoshield_tests.dir/template_matching_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/template_matching_test.cc.o.d"
  "/root/repo/tests/template_test.cc" "tests/CMakeFiles/infoshield_tests.dir/template_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/template_test.cc.o.d"
  "/root/repo/tests/tfidf_test.cc" "tests/CMakeFiles/infoshield_tests.dir/tfidf_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/tfidf_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/infoshield_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/thread_pool_test.cc.o.d"
  "/root/repo/tests/tokenizer_test.cc" "tests/CMakeFiles/infoshield_tests.dir/tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/tokenizer_test.cc.o.d"
  "/root/repo/tests/toy_example_test.cc" "tests/CMakeFiles/infoshield_tests.dir/toy_example_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/toy_example_test.cc.o.d"
  "/root/repo/tests/trafficking_pipeline_test.cc" "tests/CMakeFiles/infoshield_tests.dir/trafficking_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/trafficking_pipeline_test.cc.o.d"
  "/root/repo/tests/union_find_test.cc" "tests/CMakeFiles/infoshield_tests.dir/union_find_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/union_find_test.cc.o.d"
  "/root/repo/tests/universal_code_test.cc" "tests/CMakeFiles/infoshield_tests.dir/universal_code_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/universal_code_test.cc.o.d"
  "/root/repo/tests/visualize_test.cc" "tests/CMakeFiles/infoshield_tests.dir/visualize_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/visualize_test.cc.o.d"
  "/root/repo/tests/vocabulary_test.cc" "tests/CMakeFiles/infoshield_tests.dir/vocabulary_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/vocabulary_test.cc.o.d"
  "/root/repo/tests/word2vec_test.cc" "tests/CMakeFiles/infoshield_tests.dir/word2vec_test.cc.o" "gcc" "tests/CMakeFiles/infoshield_tests.dir/word2vec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/infoshield_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_coarse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_tfidf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/infoshield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
