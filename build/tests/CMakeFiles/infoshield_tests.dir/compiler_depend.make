# Empty compiler generated dependencies file for infoshield_tests.
# This may be replaced when dependencies are built.
